//! The dynamic-reduction procedures `Search` and `Pick` (Fig. 3).
//!
//! `Search` performs a controlled traversal of `G` from the personalized
//! match `v_p`, guided by the query: it pops `(query node, data node)` pairs
//! off a stack, adds popped data nodes (with their induced edges) to `G_Q`,
//! and for each query edge incident to the popped query node asks `Pick`
//! for the best new candidates among the data node's neighbors. `Pick`
//! filters by the guarded condition and ranks by the weight
//! `p(v,u)/(c(v,u)+1)`, returning at most `b` candidates — the *selection
//! bound* that keeps dense regions from monopolizing `G_Q`. When the stack
//! drains but progress was made, `b` is incremented and the traversal
//! restarts from `(u_p, v_p)` (Fig. 3, lines 11–12) so every query node
//! keeps a fair chance of finding matches.
//!
//! Termination: `|G_Q|` reaching the budget `α·|G|`, exhausting candidates,
//! or (when configured) blowing the visit cap.

use crate::budget::{ResourceBudget, VisitAccount};
use crate::guard::{GuardCtx, Semantics};
use crate::neighbor_index::NeighborIndex;
use rbq_graph::{DynamicSubgraph, Graph, GraphView, NodeId};
use rbq_pattern::{PNode, ResolvedPattern};
use rustc_hash::FxHashSet;

/// Result of a resource-bounded pattern algorithm (RBSim / RBSub).
#[derive(Debug, Clone)]
pub struct PatternAnswer {
    /// Sorted matches of the output node in `G_Q` — the approximate answer
    /// `Q(G_Q)`.
    pub matches: Vec<NodeId>,
    /// Size `|G_Q|` (nodes + edges) actually fetched.
    pub gq_size: usize,
    /// Nodes in `G_Q`.
    pub gq_nodes: usize,
    /// Data visited during reduction.
    pub visits: VisitAccount,
    /// Whether reduction stopped because the size budget was reached.
    pub hit_budget: bool,
    /// Final selection bound `b`.
    pub final_b: u32,
    /// Number of traversal rounds (restarts + 1).
    pub rounds: u32,
}

/// Outcome of `Search` alone: the reduced graph plus accounting.
pub struct ReductionOutcome<'g> {
    /// The reduced graph `G_Q` (induced subgraph grown node by node).
    pub gq: DynamicSubgraph<'g>,
    /// Data visited.
    pub visits: VisitAccount,
    /// Whether the size budget stopped the search.
    pub hit_budget: bool,
    /// Final selection bound `b`.
    pub final_b: u32,
    /// Traversal rounds executed.
    pub rounds: u32,
}

/// Initial selection bound (Fig. 3 line 1).
const INITIAL_B: u32 = 2;

/// How `Pick` orders candidates — the paper's weight ranking, plus
/// degraded policies for the ablation study (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PickPolicy {
    /// Rank by the estimated weight `p/(c+1)` (§4.1) — the paper's policy.
    #[default]
    Weighted,
    /// First-come order (adjacency order), no scoring.
    Fifo,
    /// Deterministic pseudo-random order (hash of node id).
    Random,
}

/// Knobs for `Search`, exposing the design choices the ablation benches
/// vary. [`ReductionConfig::default`] reproduces Fig. 3 exactly.
#[derive(Debug, Clone, Copy)]
pub struct ReductionConfig {
    /// Initial selection bound `b` (Fig. 3 line 1: 2).
    pub initial_b: u32,
    /// Whether to widen `b` and restart when progress stalls (Fig. 3
    /// lines 11-12). With `false`, the traversal is single-round.
    pub adaptive_b: bool,
    /// Candidate ordering inside `Pick`.
    pub pick_policy: PickPolicy,
}

impl Default for ReductionConfig {
    fn default() -> Self {
        ReductionConfig {
            initial_b: INITIAL_B,
            adaptive_b: true,
            pick_policy: PickPolicy::Weighted,
        }
    }
}

/// `Search` (Fig. 3): fetch a subgraph `G_Q` with `|G_Q| ≤ budget.max_units`
/// by guided traversal from `v_p`.
pub fn search_reduced_graph<'g>(
    g: &'g Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
    semantics: Semantics,
) -> ReductionOutcome<'g> {
    search_reduced_graph_with(g, idx, q, budget, semantics, ReductionConfig::default())
}

/// [`search_reduced_graph`] with explicit [`ReductionConfig`].
pub fn search_reduced_graph_with<'g>(
    g: &'g Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
    semantics: Semantics,
    config: ReductionConfig,
) -> ReductionOutcome<'g> {
    let ctx = GuardCtx::new(g, idx, q, semantics);
    let mut gq = DynamicSubgraph::new(g);
    let mut visits = VisitAccount::default();
    let mut b = config.initial_b;
    let mut rounds = 0u32;
    let mut hit_budget = false;

    // (query node, data node) pairs: the traversal stack, its membership
    // set, and the pairs already expanded this round.
    let mut stack: Vec<(PNode, NodeId)> = Vec::new();
    let mut in_stack: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut expanded: FxHashSet<(u32, u32)> = FxHashSet::default();

    if budget.max_units == 0 {
        return ReductionOutcome {
            gq,
            visits,
            hit_budget: true,
            final_b: b,
            rounds,
        };
    }

    'rounds: loop {
        rounds += 1;
        let mut changed = false;
        stack.clear();
        in_stack.clear();
        expanded.clear();
        stack.push((q.up(), q.vp()));
        in_stack.insert((q.up().0, q.vp().0));

        while let Some((u, v)) = stack.pop() {
            in_stack.remove(&(u.0, v.0));

            // Line 5: add v to G_Q if new, charging its node + induced edges
            // against the budget.
            if !gq.contains(v) {
                let units = peek_add_units(g, &gq, v, &mut visits);
                if gq.size() + units > budget.max_units {
                    hit_budget = true;
                    break 'rounds;
                }
                gq.add_node(v);
                visits.node();
                changed = true;
            }

            // Each (u, v) pair expands its query edges once per round
            // (lines 8–10).
            if !expanded.insert((u.0, v.0)) {
                continue;
            }

            // Children edges (u, u') then parent edges (u', u). Candidates
            // ranked best-last so the best ends on top of the stack.
            let p = q.pattern();
            for &uc in p.out(u) {
                let sp = pick(
                    &ctx,
                    uc,
                    v,
                    true,
                    &gq,
                    &in_stack,
                    b,
                    config.pick_policy,
                    &mut visits,
                );
                for &v2 in sp.iter().rev() {
                    stack.push((uc, v2));
                    in_stack.insert((uc.0, v2.0));
                }
                // Continue the traversal through neighbors already in G_Q:
                // they consume no candidate slot and no budget, but their
                // onward edges must be re-expanded so that beam restarts
                // (with larger b) can reach deeper unexplored regions.
                for &v2 in ctx.g.out(v) {
                    if gq.contains(v2)
                        && !expanded.contains(&(uc.0, v2.0))
                        && !in_stack.contains(&(uc.0, v2.0))
                        && ctx.guard(v2, uc, &mut visits)
                    {
                        stack.push((uc, v2));
                        in_stack.insert((uc.0, v2.0));
                    }
                }
            }
            for &up_ in p.inn(u) {
                let sp = pick(
                    &ctx,
                    up_,
                    v,
                    false,
                    &gq,
                    &in_stack,
                    b,
                    config.pick_policy,
                    &mut visits,
                );
                for &v2 in sp.iter().rev() {
                    stack.push((up_, v2));
                    in_stack.insert((up_.0, v2.0));
                }
                for &v2 in ctx.g.inn(v) {
                    if gq.contains(v2)
                        && !expanded.contains(&(up_.0, v2.0))
                        && !in_stack.contains(&(up_.0, v2.0))
                        && ctx.guard(v2, up_, &mut visits)
                    {
                        stack.push((up_, v2));
                        in_stack.insert((up_.0, v2.0));
                    }
                }
            }

            if visits.over_cap(budget) {
                break 'rounds;
            }
        }

        // Lines 11-13: widen the beam and retry, or terminate.
        if config.adaptive_b && changed && gq.size() < budget.max_units {
            b += 1;
        } else {
            break;
        }
    }

    ReductionOutcome {
        gq,
        visits,
        hit_budget,
        final_b: b,
        rounds,
    }
}

/// Units `add_node(v)` would consume: 1 for the node plus 1 per induced
/// edge between `v` and current members (both directions, self-loop once).
fn peek_add_units(
    g: &Graph,
    gq: &DynamicSubgraph<'_>,
    v: NodeId,
    visits: &mut VisitAccount,
) -> usize {
    let mut units = 1usize;
    let outs = g.out(v);
    visits.edges(outs.len());
    for &w in outs {
        // A self-loop becomes an induced edge the moment `v` joins, even
        // though `v` is not a member yet at peek time.
        if w == v || gq.contains(w) {
            units += 1;
        }
    }
    let ins = g.inn(v);
    visits.edges(ins.len());
    for &w in ins {
        if w != v && gq.contains(w) {
            units += 1;
        }
    }
    units
}

/// `Pick`: the top-`b` new candidates for query node `u2` among the
/// neighbors of `v` in the given direction (`out = true` follows the query
/// edge `(u, u2)`, i.e. children of `v`), ranked by weight `p/(c+1)`.
///
/// Nodes already in `G_Q` or already on the stack for the same query node
/// are skipped; candidates failing the guarded condition are filtered.
/// Returned best-first.
#[allow(clippy::too_many_arguments)]
fn pick(
    ctx: &GuardCtx<'_>,
    u2: PNode,
    v: NodeId,
    out: bool,
    gq: &DynamicSubgraph<'_>,
    in_stack: &FxHashSet<(u32, u32)>,
    b: u32,
    policy: PickPolicy,
    visits: &mut VisitAccount,
) -> Vec<NodeId> {
    let neighbors = if out { ctx.g.out(v) } else { ctx.g.inn(v) };
    visits.edges(neighbors.len());

    let mut scored: Vec<(f64, u32, NodeId)> = Vec::new();
    for &v2 in neighbors {
        if gq.contains(v2) || in_stack.contains(&(u2.0, v2.0)) {
            continue;
        }
        if !ctx.guard(v2, u2, visits) {
            continue;
        }
        let key = match policy {
            PickPolicy::Weighted => ctx.weight(v2, u2, gq, visits),
            PickPolicy::Fifo => 0.0,
            PickPolicy::Random => {
                // Deterministic hash-based score; no weight computation.
                let mut x = (v2.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 31;
                (x % 1_000_003) as f64
            }
        };
        // Secondary key: degree (descending) — §4.2 favors high-degree
        // candidates for isomorphism; harmless determinism for simulation.
        scored.push((key, ctx.idx.degree(v2), v2));
    }
    match policy {
        PickPolicy::Fifo => {} // keep adjacency order
        _ => {
            // Max-heap semantics: sort by weight desc, degree desc, id asc.
            scored.sort_unstable_by(|a, b_| {
                b_.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b_.1.cmp(&a.1))
                    .then(a.2.cmp(&b_.2))
            });
        }
    }
    scored.truncate(b as usize);
    scored.into_iter().map(|(_, _, v2)| v2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::GraphBuilder;
    use rbq_pattern::pattern::fig1_pattern;

    /// Fig. 1 graph at the scale of Example 2/4: Michael, m hiking-group
    /// nodes (only `hgm` connected onward to CLs), cc1..cc3, n cycling
    /// lovers with only the last two fully connected.
    fn example_graph(m: usize, n: usize) -> (Graph, NodeId, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let mut hgs = Vec::new();
        for _ in 0..m {
            hgs.push(b.add_node("HG"));
        }
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let mut cls = Vec::new();
        for _ in 0..n {
            cls.push(b.add_node("CL"));
        }
        for &h in &hgs {
            b.add_edge(michael, h);
        }
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        let cln_1 = cls[n - 2];
        let cln = cls[n - 1];
        b.add_edge(cc2, cls[0]);
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        let hgm = hgs[m - 1];
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        (b.build(), michael, vec![cln_1, cln])
    }

    fn run(
        g: &Graph,
        units: usize,
        semantics: Semantics,
    ) -> (ReductionOutcome<'_>, ResolvedPattern) {
        let idx = NeighborIndex::build(g);
        let q = fig1_pattern().resolve(g).unwrap();
        let budget = ResourceBudget::from_units(g, units);
        let out = search_reduced_graph(g, &idx, &q, &budget, semantics);
        (out, q)
    }

    #[test]
    fn example2_finds_ideal_gq_within_16_units() {
        let (g, michael, answers) = example_graph(10, 20);
        let (out, _q) = run(&g, 16, Semantics::Simulation);
        // G_Q must fit the budget.
        assert!(out.gq.size() <= 16, "|G_Q| = {}", out.gq.size());
        assert!(out.gq.contains(michael));
        // The ideal G_Q contains both answers.
        for a in answers {
            assert!(out.gq.contains(a), "missing answer node {a:?}");
        }
    }

    #[test]
    fn budget_is_respected_exactly() {
        let (g, _, _) = example_graph(30, 50);
        for units in [1usize, 2, 4, 8, 12, 20, 40] {
            let (out, _) = run(&g, units, Semantics::Simulation);
            assert!(
                out.gq.size() <= units,
                "budget {units} violated: {}",
                out.gq.size()
            );
        }
    }

    #[test]
    fn zero_budget_returns_empty() {
        let (g, _, _) = example_graph(5, 6);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, 0);
        let out = search_reduced_graph(&g, &idx, &q, &budget, Semantics::Simulation);
        assert_eq!(out.gq.num_nodes(), 0);
        assert!(out.hit_budget);
    }

    #[test]
    fn guard_filters_decoys_out_of_gq() {
        let (g, _, _) = example_graph(10, 20);
        let (out, q) = run(&g, 60, Semantics::Simulation);
        // cc2 (CC without a Michael parent) must never enter G_Q: its guard
        // fails. cc2's id: Michael=0, HGs=1..=10, cc1=11, cc2=12, cc3=13.
        let cc2 = NodeId(12);
        assert!(!out.gq.contains(cc2));
        let _ = q;
    }

    #[test]
    fn large_budget_reaches_fixpoint_without_hitting_it() {
        let (g, _, _) = example_graph(5, 8);
        let (out, _) = run(&g, 1000, Semantics::Simulation);
        assert!(!out.hit_budget);
        // Guarded traversal stops well short of the graph: hg decoys and
        // cl decoys are excluded.
        assert!(out.gq.size() < g.size());
        assert!(out.rounds >= 1);
    }

    #[test]
    fn beam_restart_widens_b() {
        // Many valid CC-like candidates forces multiple rounds when the
        // budget allows more than 2 per query node.
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let hg = b.add_node("HG");
        b.add_edge(michael, hg);
        let mut cls = Vec::new();
        for _ in 0..6 {
            let cc = b.add_node("CC");
            let cl = b.add_node("CL");
            b.add_edge(michael, cc);
            b.add_edge(cc, cl);
            b.add_edge(hg, cl);
            cls.push(cl);
        }
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, g.size());
        let out = search_reduced_graph(&g, &idx, &q, &budget, Semantics::Simulation);
        assert!(out.final_b > INITIAL_B, "b should have grown");
        // Eventually all 6 CC branches are explored.
        for cl in cls {
            assert!(out.gq.contains(cl));
        }
    }

    #[test]
    fn visit_cap_stops_search() {
        let (g, _, _) = example_graph(50, 80);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, 200).with_visit_cap(30);
        let out = search_reduced_graph(&g, &idx, &q, &budget, Semantics::Simulation);
        // The search must stop shortly after the cap trips; allow the
        // within-iteration overshoot of the expansion that tripped it.
        assert!(out.visits.total() <= 30 + g.max_degree() * 8);
    }

    #[test]
    fn isomorphism_semantics_also_bounded() {
        let (g, _, answers) = example_graph(10, 20);
        let (out, _) = run(&g, 16, Semantics::Isomorphism);
        assert!(out.gq.size() <= 16);
        for a in answers {
            assert!(out.gq.contains(a));
        }
    }

    #[test]
    fn gq_is_subgraph_of_dq_neighborhood() {
        let (g, michael, _) = example_graph(10, 20);
        let (out, q) = run(&g, 100, Semantics::Simulation);
        let ball = rbq_pattern::strongsim::ball_nodes(&g, michael, q.dq());
        for &v in out.gq.members() {
            assert!(ball.binary_search(&v).is_ok(), "{v:?} outside G_dQ(v_p)");
        }
    }

    #[test]
    fn visits_stay_within_degree_bound() {
        // Theorem 3(a): at most d_G · α|G| nodes and edges visited, where
        // d_G is the max degree of G_dQ(v_p). Our accounting also includes
        // the candidate-scoring scans, so allow a small constant factor.
        let (g, michael, _) = example_graph(20, 40);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let units = 30usize;
        let budget = ResourceBudget::from_units(&g, units);
        let out = search_reduced_graph(&g, &idx, &q, &budget, Semantics::Simulation);
        let ball = rbq_pattern::strongsim::ball_nodes(&g, michael, q.dq());
        let dg = ball.iter().map(|&v| g.deg(v)).max().unwrap_or(1);
        let bound = dg * units;
        assert!(
            out.visits.total() <= bound * 4,
            "visits {} vs d_G·α|G| = {bound}",
            out.visits.total()
        );
    }
}
