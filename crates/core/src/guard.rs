//! Guarded conditions, costs, and potentials — the node-selection weights of
//! dynamic reduction (§4.1, §4.2).
//!
//! For a data node `v` and query node `u`:
//!
//! * **Guard `C(v, u)`** — may `v` be a candidate match of `u`? For
//!   simulation (§4.1): labels agree and every query parent/child label of
//!   `u` occurs among `v`'s parents/children (checked against the offline
//!   [`NeighborIndex`], like the paper's `S_l`). For subgraph isomorphism
//!   (§4.2) the guard is enriched with degree constraints: every query
//!   neighbor `u'` needs a *distinct* data neighbor with the same label and
//!   degree `≥ deg(u')`.
//! * **Cost `c(v, u)`** — how many query neighbors of `u` still lack a
//!   candidate among `v`'s neighbors *already in `G_Q`* (the extra nodes a
//!   commitment to `v` would pull in).
//! * **Potential `p(v, u)`** — how many of `v`'s neighbors could serve as
//!   candidates for `u`'s query neighbors (Example 4's `p(cc1, CC) = 3`).
//!
//! `Pick` ranks candidates by the estimated weight `p(v,u) / (c(v,u) + 1)`,
//! favoring high potential and low cost.

use crate::budget::VisitAccount;
use crate::neighbor_index::NeighborIndex;
use rbq_graph::{DynamicSubgraph, Graph, GraphView, NodeId};
use rbq_pattern::{PNode, ResolvedPattern};
use rustc_hash::FxHashMap;

/// Which matching semantics the reduction serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Strong simulation (RBSim, §4.1).
    Simulation,
    /// Subgraph isomorphism (RBSub, §4.2).
    Isomorphism,
}

/// Shared context for guard/cost/potential evaluation.
pub struct GuardCtx<'a> {
    /// The data graph.
    pub g: &'a Graph,
    /// The offline neighbor index.
    pub idx: &'a NeighborIndex,
    /// The resolved query.
    pub q: &'a ResolvedPattern,
    /// Matching semantics.
    pub semantics: Semantics,
}

impl<'a> GuardCtx<'a> {
    /// Create a context.
    pub fn new(
        g: &'a Graph,
        idx: &'a NeighborIndex,
        q: &'a ResolvedPattern,
        semantics: Semantics,
    ) -> Self {
        GuardCtx {
            g,
            idx,
            q,
            semantics,
        }
    }

    /// The guarded condition `C(v, u)`.
    pub fn guard(&self, v: NodeId, u: PNode, acc: &mut VisitAccount) -> bool {
        if self.g.node_label(v) != self.q.label(u) {
            return false;
        }
        match self.semantics {
            Semantics::Simulation => self.guard_sim(v, u, acc),
            Semantics::Isomorphism => self.guard_sub(v, u, acc),
        }
    }

    /// Simulation guard: every query-neighbor label must occur in the right
    /// direction among `v`'s neighbors. Pure index lookups (the `S_l`
    /// structure) — one node-record inspection.
    fn guard_sim(&self, v: NodeId, u: PNode, acc: &mut VisitAccount) -> bool {
        acc.node();
        let s = self.idx.summary(v);
        let p = self.q.pattern();
        for &uc in p.out(u) {
            if s.out_count(self.q.label(uc)) == 0 {
                return false;
            }
        }
        for &up_ in p.inn(u) {
            if s.in_count(self.q.label(up_)) == 0 {
                return false;
            }
        }
        true
    }

    /// Isomorphism guard: per direction and label, the multiset of query
    /// neighbor degrees must be dominated by distinct data-neighbor degrees.
    fn guard_sub(&self, v: NodeId, u: PNode, acc: &mut VisitAccount) -> bool {
        acc.node();
        let p = self.q.pattern();
        // Quick degree screen.
        if self.g.deg_out(v) < p.out(u).len() || self.g.deg_in(v) < p.inn(u).len() {
            return false;
        }
        self.feasible_dir(v, u, true, acc) && self.feasible_dir(v, u, false, acc)
    }

    /// Hall-style feasibility for one direction: group query neighbors by
    /// label with required degrees, then greedily consume the sorted data
    /// neighbor degrees. Correct because the constraint is a single scalar
    /// threshold (exchange argument).
    fn feasible_dir(&self, v: NodeId, u: PNode, out: bool, acc: &mut VisitAccount) -> bool {
        let p = self.q.pattern();
        let qn: &[PNode] = if out { p.out(u) } else { p.inn(u) };
        if qn.is_empty() {
            return true;
        }
        // label -> sorted (desc) required degrees
        let mut req: FxHashMap<rbq_graph::Label, Vec<u32>> = FxHashMap::default();
        for &uq in qn {
            req.entry(self.q.label(uq))
                .or_default()
                .push(p.degree(uq) as u32);
        }
        let dn: &[NodeId] = if out { self.g.out(v) } else { self.g.inn(v) };
        acc.edges(dn.len());
        // label -> sorted (desc) available degrees
        let mut avail: FxHashMap<rbq_graph::Label, Vec<u32>> = FxHashMap::default();
        for &w in dn {
            let lw = self.g.node_label(w);
            if req.contains_key(&lw) {
                avail.entry(lw).or_default().push(self.idx.degree(w));
            }
        }
        for (l, mut need) in req {
            let Some(have) = avail.get_mut(&l) else {
                return false;
            };
            if have.len() < need.len() {
                return false;
            }
            need.sort_unstable_by(|a, b| b.cmp(a));
            have.sort_unstable_by(|a, b| b.cmp(a));
            if need.iter().zip(have.iter()).any(|(n, h)| h < n) {
                return false;
            }
        }
        true
    }

    /// The dynamic cost `c(v, u)`: query neighbors of `u` without a
    /// suitable candidate among `v`'s neighbors already in `G_Q`.
    pub fn cost(
        &self,
        v: NodeId,
        u: PNode,
        gq: &DynamicSubgraph<'_>,
        acc: &mut VisitAccount,
    ) -> u32 {
        let mut out_buf = Vec::new();
        let mut in_buf = Vec::new();
        self.cost_with(v, u, gq, acc, &mut out_buf, &mut in_buf)
    }

    /// [`GuardCtx::cost`] with caller-owned `(label, degree)` scratch
    /// buffers, so the reduction's `Pick` scoring never allocates.
    pub fn cost_with(
        &self,
        v: NodeId,
        u: PNode,
        gq: &DynamicSubgraph<'_>,
        acc: &mut VisitAccount,
        out_buf: &mut Vec<(rbq_graph::Label, u32)>,
        in_buf: &mut Vec<(rbq_graph::Label, u32)>,
    ) -> u32 {
        let p = self.q.pattern();
        let mut missing = 0u32;
        // Gather (label, degree) of v's neighbors already in G_Q, per
        // direction, in one scan.
        out_buf.clear();
        {
            let list = self.g.out(v);
            acc.edges(list.len());
            out_buf.extend(
                list.iter()
                    .filter(|w| gq.contains(**w))
                    .map(|&w| (self.g.node_label(w), self.idx.degree(w))),
            );
        }
        in_buf.clear();
        {
            let list = self.g.inn(v);
            acc.edges(list.len());
            in_buf.extend(
                list.iter()
                    .filter(|w| gq.contains(**w))
                    .map(|&w| (self.g.node_label(w), self.idx.degree(w))),
            );
        }
        let need_degree = self.semantics == Semantics::Isomorphism;
        for &uc in p.out(u) {
            let l = self.q.label(uc);
            let d = p.degree(uc) as u32;
            let ok = out_buf
                .iter()
                .any(|&(lw, dw)| lw == l && (!need_degree || dw >= d));
            if !ok {
                missing += 1;
            }
        }
        for &up_ in p.inn(u) {
            let l = self.q.label(up_);
            let d = p.degree(up_) as u32;
            let ok = in_buf
                .iter()
                .any(|&(lw, dw)| lw == l && (!need_degree || dw >= d));
            if !ok {
                missing += 1;
            }
        }
        missing
    }

    /// The potential `p(v, u)`: neighbors of `v` that could be candidates
    /// for `u`'s query neighbors.
    ///
    /// For simulation this is exactly the paper's summary-based count
    /// (Example 4: `p(cc1, CC) = out-CL(2) + in-Michael(1) = 3`): for every
    /// distinct query-neighbor label per direction, the number of `v`
    /// neighbors carrying it. For isomorphism it additionally applies the
    /// degree threshold (one neighborhood scan).
    pub fn potential(&self, v: NodeId, u: PNode, acc: &mut VisitAccount) -> u32 {
        let p = self.q.pattern();
        let mut out_labels: Vec<rbq_graph::Label> =
            p.out(u).iter().map(|&uq| self.q.label(uq)).collect();
        out_labels.sort_unstable();
        out_labels.dedup();
        let mut in_labels: Vec<rbq_graph::Label> =
            p.inn(u).iter().map(|&uq| self.q.label(uq)).collect();
        in_labels.sort_unstable();
        in_labels.dedup();
        self.potential_with(v, u, &out_labels, &in_labels, acc)
    }

    /// [`GuardCtx::potential`] with the deduplicated query-neighbor label
    /// sets of `u` precomputed by the caller (they depend only on the query,
    /// so the reduction computes them once per query node, not once per
    /// candidate). The slices are only read under simulation semantics.
    pub fn potential_with(
        &self,
        v: NodeId,
        u: PNode,
        out_labels: &[rbq_graph::Label],
        in_labels: &[rbq_graph::Label],
        acc: &mut VisitAccount,
    ) -> u32 {
        let p = self.q.pattern();
        match self.semantics {
            Semantics::Simulation => {
                acc.node();
                let s = self.idx.summary(v);
                let mut total = 0u32;
                for &l in out_labels {
                    total += s.out_count(l);
                }
                for &l in in_labels {
                    total += s.in_count(l);
                }
                total
            }
            Semantics::Isomorphism => {
                let mut total = 0u32;
                let outs = self.g.out(v);
                acc.edges(outs.len());
                for &w in outs {
                    let lw = self.g.node_label(w);
                    let dw = self.idx.degree(w);
                    if p.out(u)
                        .iter()
                        .any(|&uq| self.q.label(uq) == lw && dw >= p.degree(uq) as u32)
                    {
                        total += 1;
                    }
                }
                let ins = self.g.inn(v);
                acc.edges(ins.len());
                for &w in ins {
                    let lw = self.g.node_label(w);
                    let dw = self.idx.degree(w);
                    if p.inn(u)
                        .iter()
                        .any(|&uq| self.q.label(uq) == lw && dw >= p.degree(uq) as u32)
                    {
                        total += 1;
                    }
                }
                total
            }
        }
    }

    /// The selection weight `p(v,u) / (c(v,u) + 1)`.
    pub fn weight(
        &self,
        v: NodeId,
        u: PNode,
        gq: &DynamicSubgraph<'_>,
        acc: &mut VisitAccount,
    ) -> f64 {
        let p = self.potential(v, u, acc) as f64;
        let c = self.cost(v, u, gq, acc) as f64;
        p / (c + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::GraphBuilder;
    use rbq_pattern::pattern::fig1_pattern;

    /// Fig. 1 fragment used by Example 4.
    fn fig1() -> (Graph, FxHashMap<&'static str, NodeId>) {
        let mut b = GraphBuilder::new();
        let mut m = FxHashMap::default();
        m.insert("michael", b.add_node("Michael"));
        m.insert("hg1", b.add_node("HG"));
        m.insert("hgm", b.add_node("HG"));
        m.insert("cc1", b.add_node("CC"));
        m.insert("cc2", b.add_node("CC"));
        m.insert("cc3", b.add_node("CC"));
        m.insert("cl1", b.add_node("CL"));
        m.insert("cln_1", b.add_node("CL"));
        m.insert("cln", b.add_node("CL"));
        b.add_edge(m["michael"], m["hg1"]);
        b.add_edge(m["michael"], m["hgm"]);
        b.add_edge(m["michael"], m["cc1"]);
        b.add_edge(m["michael"], m["cc3"]);
        b.add_edge(m["cc2"], m["cl1"]);
        b.add_edge(m["cc1"], m["cln_1"]);
        b.add_edge(m["cc1"], m["cln"]);
        b.add_edge(m["cc3"], m["cln"]);
        b.add_edge(m["hgm"], m["cln_1"]);
        b.add_edge(m["hgm"], m["cln"]);
        (b.build(), m)
    }

    fn ctx_parts(g: &Graph) -> (NeighborIndex, ResolvedPattern) {
        let idx = NeighborIndex::build(g);
        let q = fig1_pattern().resolve(g).unwrap();
        (idx, q)
    }

    // Pattern node ids in fig1_pattern: 0=Michael, 1=CC, 2=HG, 3=CL.
    const Q_CC: PNode = PNode(1);
    const Q_HG: PNode = PNode(2);

    #[test]
    fn example4_guard_rules_out_cc2() {
        let (g, m) = fig1();
        let (idx, q) = ctx_parts(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Simulation);
        let mut acc = VisitAccount::default();
        // cc2 has a CL child but no Michael parent.
        assert!(!ctx.guard(m["cc2"], Q_CC, &mut acc));
        assert!(ctx.guard(m["cc1"], Q_CC, &mut acc));
        assert!(ctx.guard(m["cc3"], Q_CC, &mut acc));
    }

    #[test]
    fn example4_potentials() {
        let (g, m) = fig1();
        let (idx, q) = ctx_parts(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Simulation);
        let mut acc = VisitAccount::default();
        // Paper: p(cc1, CC) = 3, p(cc3, CC) = 2.
        assert_eq!(ctx.potential(m["cc1"], Q_CC, &mut acc), 3);
        assert_eq!(ctx.potential(m["cc3"], Q_CC, &mut acc), 2);
    }

    #[test]
    fn example4_costs_with_michael_in_gq() {
        let (g, m) = fig1();
        let (idx, q) = ctx_parts(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Simulation);
        let mut acc = VisitAccount::default();
        let mut gq = DynamicSubgraph::new(&g);
        gq.add_node(m["michael"]);
        // Paper: both cc1 and cc3 have cost 1 (CL child not in G_Q yet,
        // Michael parent already present).
        assert_eq!(ctx.cost(m["cc1"], Q_CC, &gq, &mut acc), 1);
        assert_eq!(ctx.cost(m["cc3"], Q_CC, &gq, &mut acc), 1);
    }

    #[test]
    fn example4_weights_rank_cc1_first() {
        let (g, m) = fig1();
        let (idx, q) = ctx_parts(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Simulation);
        let mut acc = VisitAccount::default();
        let mut gq = DynamicSubgraph::new(&g);
        gq.add_node(m["michael"]);
        let w1 = ctx.weight(m["cc1"], Q_CC, &gq, &mut acc);
        let w3 = ctx.weight(m["cc3"], Q_CC, &gq, &mut acc);
        assert!(w1 > w3, "paper ranks Sp = [cc1, cc3]");
        assert!((w1 - 1.5).abs() < 1e-12);
        assert!((w3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example4_hgm_cost_drops_to_zero() {
        let (g, m) = fig1();
        let (idx, q) = ctx_parts(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Simulation);
        let mut acc = VisitAccount::default();
        let mut gq = DynamicSubgraph::new(&g);
        for key in ["michael", "cc3", "cln", "cln_1"] {
            gq.add_node(m[key]);
        }
        // hgm has child cln and parent Michael in G_Q -> cost 0.
        assert_eq!(ctx.cost(m["hgm"], Q_HG, &gq, &mut acc), 0);
        // p(hgm, HG): paper says 4 (3 CL children + Michael parent... our
        // fragment gives hgm 2 CL children + 1 Michael parent = 3; the
        // paper's full graph has one more CL child).
        assert_eq!(ctx.potential(m["hgm"], Q_HG, &mut acc), 3);
    }

    #[test]
    fn hg_nodes_without_cl_child_fail_guard() {
        let (g, m) = fig1();
        let (idx, q) = ctx_parts(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Simulation);
        let mut acc = VisitAccount::default();
        assert!(!ctx.guard(m["hg1"], Q_HG, &mut acc));
        assert!(ctx.guard(m["hgm"], Q_HG, &mut acc));
    }

    #[test]
    fn label_mismatch_fails_guard_fast() {
        let (g, m) = fig1();
        let (idx, q) = ctx_parts(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Simulation);
        let mut acc = VisitAccount::default();
        assert!(!ctx.guard(m["hgm"], Q_CC, &mut acc));
    }

    #[test]
    fn sub_guard_degree_constraints() {
        // Query u (A) needs two distinct B children each with degree >= 2.
        // v1 has two B children of degree 2; v2 has two B children but one
        // has degree 1.
        let mut b = GraphBuilder::new();
        let root = b.add_node("R");
        let v1 = b.add_node("A");
        let v2 = b.add_node("A");
        let b11 = b.add_node("B");
        let b12 = b.add_node("B");
        let b21 = b.add_node("B");
        let b22 = b.add_node("B");
        let t = b.add_node("T");
        b.add_edge(root, v1);
        b.add_edge(root, v2);
        b.add_edge(v1, b11);
        b.add_edge(v1, b12);
        b.add_edge(v2, b21);
        b.add_edge(v2, b22);
        // Give b11, b12, b21 an extra edge so their degree is 2; b22 stays 1.
        b.add_edge(b11, t);
        b.add_edge(b12, t);
        b.add_edge(b21, t);
        let g = b.build();

        let mut pb = rbq_pattern::PatternBuilder::new();
        let qr = pb.add_node("R");
        let qa = pb.add_node("A");
        let qb1 = pb.add_node("B");
        let qb2 = pb.add_node("B");
        let qt = pb.add_node("T");
        pb.add_edge(qr, qa);
        pb.add_edge(qa, qb1);
        pb.add_edge(qa, qb2);
        pb.add_edge(qb1, qt);
        pb.add_edge(qb2, qt);
        pb.personalized(qr).output(qb1);
        let q = pb.build().resolve(&g).unwrap();
        let idx = NeighborIndex::build(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Isomorphism);
        let mut acc = VisitAccount::default();
        // qb1/qb2 have pattern degree 2, so children must have data degree >= 2.
        assert!(
            ctx.guard(v1, qa, &mut acc),
            "v1's B children both have degree 2"
        );
        assert!(
            !ctx.guard(v2, qa, &mut acc),
            "v2's b22 has degree 1 < required 2"
        );
    }

    #[test]
    fn sub_guard_requires_distinct_neighbors() {
        // Query A needs two B children; data node has only one.
        let mut b = GraphBuilder::new();
        let r = b.add_node("R");
        let a = b.add_node("A");
        let bb = b.add_node("B");
        b.add_edge(r, a);
        b.add_edge(a, bb);
        let g = b.build();
        let mut pb = rbq_pattern::PatternBuilder::new();
        let qr = pb.add_node("R");
        let qa = pb.add_node("A");
        let qb1 = pb.add_node("B");
        let qb2 = pb.add_node("B");
        pb.add_edge(qr, qa).add_edge(qa, qb1).add_edge(qa, qb2);
        pb.personalized(qr).output(qb1);
        let q = pb.build().resolve(&g).unwrap();
        let idx = NeighborIndex::build(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Isomorphism);
        let mut acc = VisitAccount::default();
        assert!(!ctx.guard(a, qa, &mut acc));
    }

    #[test]
    fn visits_are_accounted() {
        let (g, m) = fig1();
        let (idx, q) = ctx_parts(&g);
        let ctx = GuardCtx::new(&g, &idx, &q, Semantics::Simulation);
        let mut acc = VisitAccount::default();
        let gq = DynamicSubgraph::new(&g);
        let _ = ctx.guard(m["cc1"], Q_CC, &mut acc);
        let _ = ctx.cost(m["cc1"], Q_CC, &gq, &mut acc);
        let _ = ctx.potential(m["cc1"], Q_CC, &mut acc);
        assert!(acc.total() > 0);
    }
}
