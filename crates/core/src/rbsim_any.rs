//! **RBSimAny** — resource-bounded matching for patterns *without* a
//! personalized node (the paper's §7, first open topic).
//!
//! Without the unique anchor `v_p`, locality has no fixed center: the
//! answer is the union, over every candidate assignment of some query node
//! to a data node, of the anchored answers. RBSimAny approximates it under
//! a global budget `α|G|`:
//!
//! 1. pick the *seed query node* `u*` — the query node whose label has the
//!    fewest data candidates (the most selective anchor);
//! 2. score each guarded candidate `v` of `u*` with the dynamic-reduction
//!    weight `p(v, u*)/(c(v, u*)+1)` and keep the top `max_seeds`;
//! 3. split the budget evenly across seeds, run the anchored reduction
//!    (Fig. 3) from each, and union the per-seed `Q(G_Q)` answers.
//!
//! The result is sound (a subset of the exact anonymous answer) for the
//! same reason RBSim is, and exact when the budget covers every seed's
//! guarded region.

use crate::budget::{ResourceBudget, VisitAccount};
use crate::guard::{GuardCtx, Semantics};
use crate::neighbor_index::NeighborIndex;
use crate::rbsim::PatternScratch;
use crate::reduction::{search_reduced_graph_scratch, ReductionConfig};
use rbq_graph::{DynamicSubgraph, Graph, GraphView, NodeId};
use rbq_pattern::{strong_simulation_on_view_with, PNode, Pattern};

/// Knobs for [`rbsim_any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyConfig {
    /// Maximum number of seed anchors explored (budget is split across
    /// them).
    pub max_seeds: usize,
}

impl Default for AnyConfig {
    fn default() -> Self {
        AnyConfig { max_seeds: 8 }
    }
}

/// Answer of [`rbsim_any`].
#[derive(Debug, Clone)]
pub struct AnyAnswer {
    /// Sorted union of output-node matches across seeds.
    pub matches: Vec<NodeId>,
    /// Seeds actually explored (data nodes anchoring the seed query node).
    pub seeds: Vec<NodeId>,
    /// The seed query node `u*`.
    pub seed_query_node: PNode,
    /// Total `|G_Q|` units fetched across seeds (≤ the budget).
    pub total_gq_size: usize,
    /// Total data visited.
    pub visits: VisitAccount,
}

/// Resource-bounded strong simulation for anonymous patterns.
pub fn rbsim_any(
    g: &Graph,
    idx: &NeighborIndex,
    pattern: &Pattern,
    budget: &ResourceBudget,
    config: AnyConfig,
) -> AnyAnswer {
    let mut scratch = PatternScratch::new();
    rbsim_any_with(g, idx, pattern, budget, config, &mut scratch)
}

/// [`rbsim_any`] through a reusable [`PatternScratch`]: the per-seed
/// reductions and evaluations share warm buffers (within the call and, for
/// serving loops, across calls). Identical answers to the one-shot entry
/// point.
pub fn rbsim_any_with(
    g: &Graph,
    idx: &NeighborIndex,
    pattern: &Pattern,
    budget: &ResourceBudget,
    config: AnyConfig,
    scratch: &mut PatternScratch,
) -> AnyAnswer {
    let mut visits = VisitAccount::default();

    // Seed query node: fewest data candidates by label — a constant-time
    // partition-length lookup per query node, not an O(|V|) scan.
    let seed_u = pattern
        .nodes()
        .min_by_key(|&u| {
            g.labels()
                .get(pattern.label_str(u))
                .map_or(0, |l| g.count_nodes_with_label(l))
        })
        // invariant: `Pattern::build` asserts non-empty, so every resolved
        // pattern has at least one node and `min_by_key` yields `Some`.
        .expect("patterns have nodes");

    // Re-anchor the pattern at u*: reuse the anchored machinery with
    // personalized = u*. Output node is unchanged.
    let reanchored = reanchor(pattern, seed_u);

    let Some(seed_label) = g.labels().get(pattern.label_str(seed_u)) else {
        return AnyAnswer {
            matches: Vec::new(),
            seeds: Vec::new(),
            seed_query_node: seed_u,
            total_gq_size: 0,
            visits,
        };
    };

    // Guarded, weight-ranked seed candidates. The resolved instance is
    // also reused (re-anchored in place) for the per-seed reductions:
    // labels and d_Q are anchor-independent, so one resolve serves all
    // seeds without per-seed pattern clones.
    let mut scored: Vec<(f64, NodeId)> = Vec::new();
    let mut resolved = None;
    if let Some(&first) = g.nodes_with_label(seed_label).first() {
        if let Ok(q0) = reanchored.resolve_with_anchor(g, first) {
            {
                let ctx = GuardCtx::new(g, idx, &q0, Semantics::Simulation);
                let empty = DynamicSubgraph::new(g);
                for &v in g.nodes_with_label(seed_label) {
                    if !ctx.guard(v, seed_u, &mut visits) {
                        continue;
                    }
                    let w = ctx.weight(v, seed_u, &empty, &mut visits);
                    scored.push((w, v));
                }
            }
            resolved = Some(q0);
        }
    }
    scored.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    scored.truncate(config.max_seeds.max(1));
    let seeds: Vec<NodeId> = scored.into_iter().map(|(_, v)| v).collect();
    if seeds.is_empty() {
        return AnyAnswer {
            matches: Vec::new(),
            seeds,
            seed_query_node: seed_u,
            total_gq_size: 0,
            visits,
        };
    }

    // Split the budget evenly; remainder to the first seeds. Per-seed
    // answers are sorted vectors; the union is a sort + dedup at the end
    // (no hash set on the matching path).
    // invariant: the empty-seed case returned early above, so the loop ran
    // at least once and `resolved` was set.
    let mut q = resolved.expect("seeds are non-empty, so resolution succeeded");
    let per_seed = (budget.max_units / seeds.len()).max(1);
    let mut matches: Vec<NodeId> = Vec::new();
    let mut per_seed_matches: Vec<NodeId> = Vec::new();
    let mut total_gq = 0usize;
    for &seed in &seeds {
        if !q.set_anchor(g, seed) {
            continue;
        }
        let sub_budget = ResourceBudget::from_units(g, per_seed);
        let red = search_reduced_graph_scratch(
            g,
            idx,
            &q,
            &sub_budget,
            Semantics::Simulation,
            ReductionConfig::default(),
            &mut scratch.reduction,
        );
        visits.add_from(&red.visits);
        total_gq += red.gq.size();
        strong_simulation_on_view_with(&q, &red.gq, &mut scratch.eval, &mut per_seed_matches);
        matches.extend_from_slice(&per_seed_matches);
        scratch.reduction.recycle(red.gq);
    }
    matches.sort_unstable();
    matches.dedup();
    AnyAnswer {
        matches,
        seeds,
        seed_query_node: seed_u,
        total_gq_size: total_gq,
        visits,
    }
}

/// Clone `pattern` with `u` as its personalized node (output unchanged).
fn reanchor(pattern: &Pattern, u: PNode) -> Pattern {
    let mut pb = rbq_pattern::PatternBuilder::new();
    let nodes: Vec<PNode> = pattern
        .nodes()
        .map(|x| pb.add_node(pattern.label_str(x)))
        .collect();
    for &(a, b) in pattern.edges() {
        pb.add_edge(nodes[a.index()], nodes[b.index()]);
    }
    pb.personalized(nodes[u.index()]);
    pb.output(nodes[pattern.output().index()]);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::GraphBuilder;
    use rbq_pattern::strongsim::strong_simulation_anonymous;
    use rbq_pattern::PatternBuilder;

    /// Graph with two disjoint triangles A->B->C, only one of which also
    /// has the D tail demanded by the pattern.
    fn two_clusters() -> Graph {
        let mut b = GraphBuilder::new();
        // Cluster 1 (complete): a1 -> b1 -> c1, c1 -> d1
        let a1 = b.add_node("A");
        let b1 = b.add_node("B");
        let c1 = b.add_node("C");
        let d1 = b.add_node("D");
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.add_edge(c1, d1);
        // Cluster 2 (no D): a2 -> b2 -> c2
        let a2 = b.add_node("A");
        let b2 = b.add_node("B");
        let c2 = b.add_node("C");
        b.add_edge(a2, b2);
        b.add_edge(b2, c2);
        b.build()
    }

    fn chain_pattern() -> Pattern {
        let mut pb = PatternBuilder::new();
        let a = pb.add_node("A");
        let bq = pb.add_node("B");
        let c = pb.add_node("C");
        let d = pb.add_node("D");
        pb.add_edge(a, bq).add_edge(bq, c).add_edge(c, d);
        pb.personalized(a).output(d);
        pb.build()
    }

    #[test]
    fn finds_anonymous_matches() {
        let g = two_clusters();
        let idx = NeighborIndex::build(&g);
        let p = chain_pattern();
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsim_any(&g, &idx, &p, &budget, AnyConfig::default());
        let exact = strong_simulation_anonymous(&p, &g);
        assert_eq!(ans.matches, exact);
        assert!(!ans.matches.is_empty());
        // The D label is rarest -> seed query node is the D node.
        assert_eq!(p.label_str(ans.seed_query_node), "D");
    }

    #[test]
    fn sound_under_small_budget() {
        let g = two_clusters();
        let idx = NeighborIndex::build(&g);
        let p = chain_pattern();
        let exact = strong_simulation_anonymous(&p, &g);
        for units in [2usize, 4, 6, 10] {
            let budget = ResourceBudget::from_units(&g, units);
            let ans = rbsim_any(&g, &idx, &p, &budget, AnyConfig::default());
            assert!(ans.total_gq_size <= units + ans.seeds.len()); // per-seed rounding
            for v in &ans.matches {
                assert!(exact.contains(v), "spurious {v:?} at {units} units");
            }
        }
    }

    #[test]
    fn multiple_seed_regions_are_unioned() {
        // Two D-complete clusters: both answers must appear.
        let mut b = GraphBuilder::new();
        for _ in 0..2 {
            let a = b.add_node("A");
            let bb = b.add_node("B");
            let c = b.add_node("C");
            let d = b.add_node("D");
            b.add_edge(a, bb);
            b.add_edge(bb, c);
            b.add_edge(c, d);
        }
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        let p = chain_pattern();
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsim_any(&g, &idx, &p, &budget, AnyConfig::default());
        assert_eq!(ans.matches.len(), 2);
        assert_eq!(ans.seeds.len(), 2);
    }

    #[test]
    fn seed_cap_limits_exploration() {
        let mut b = GraphBuilder::new();
        for _ in 0..5 {
            let a = b.add_node("A");
            let d = b.add_node("D");
            b.add_edge(a, d);
        }
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        let mut pb = PatternBuilder::new();
        let a = pb.add_node("A");
        let d = pb.add_node("D");
        pb.add_edge(a, d).personalized(a).output(d);
        let p = pb.build();
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsim_any(&g, &idx, &p, &budget, AnyConfig { max_seeds: 2 });
        assert_eq!(ans.seeds.len(), 2);
        assert_eq!(ans.matches.len(), 2, "one match per explored seed");
    }

    #[test]
    fn missing_label_returns_empty() {
        let mut b = GraphBuilder::new();
        b.add_node("X");
        let g = b.build();
        let idx = NeighborIndex::build(&g);
        let p = chain_pattern();
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsim_any(&g, &idx, &p, &budget, AnyConfig::default());
        assert!(ans.matches.is_empty());
        assert!(ans.seeds.is_empty());
    }
}
