//! The resource ratio `α` and visit accounting (§3).
//!
//! An algorithm with resource bound `α` must (1) fetch a fraction `G_Q` of
//! `G` with `|G_Q| ≤ α·|G|` and (2) visit at most `α·c·|G|` data while doing
//! so, where `c` is a coefficient with `α·c < 1`. For the pattern
//! algorithms, `c` materializes as `d_G` — the maximum degree in
//! `G_dQ(v_p)` (Theorem 3); for reachability, `c = 1` (Theorem 4).

use rbq_graph::GraphView;

/// A resource budget: the ratio `α` plus derived absolute limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceBudget {
    /// The resource ratio `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Absolute size bound `⌊α·|G|⌋` in nodes+edges units.
    pub max_units: usize,
    /// Optional hard cap on visited data (`α·c·|G|`); `None` leaves visiting
    /// bounded only by the algorithm's structure (Theorem 3's `d_G·α|G|`).
    pub visit_cap: Option<usize>,
}

impl ResourceBudget {
    /// Budget allowing `⌊alpha · |g|⌋` units for `G_Q`.
    ///
    /// # Panics
    /// Panics if `alpha` is not in `(0, 1]` or is not finite.
    pub fn from_ratio<V: GraphView + ?Sized>(g: &V, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "resource ratio must lie in (0, 1], got {alpha}"
        );
        let max_units = (alpha * g.size() as f64).floor() as usize;
        ResourceBudget {
            alpha,
            max_units,
            visit_cap: None,
        }
    }

    /// Budget from an absolute unit count (useful in tests and when scaling
    /// paper `α` values across graph sizes; the algorithms only ever consume
    /// the absolute budget `α·|G|`).
    ///
    /// `units` is clamped to `|G|`: a budget beyond the whole graph buys
    /// nothing, and letting it through would produce `alpha > 1.0`,
    /// violating the upper end of the `α ∈ (0, 1]` invariant that
    /// [`ResourceBudget::from_ratio`] asserts and that the `α·c < 1`
    /// visit-cap reasoning ([`ResourceBudget::with_visit_coefficient`])
    /// depends on. The low end is intentionally looser than `from_ratio`:
    /// `units == 0` (the zero-budget degenerate case several tests
    /// exercise) yields `alpha == 0.0` and an empty `G_Q`.
    pub fn from_units<V: GraphView + ?Sized>(g: &V, units: usize) -> Self {
        let size = g.size();
        let max_units = units.min(size);
        ResourceBudget {
            alpha: max_units as f64 / size.max(1) as f64,
            max_units,
            visit_cap: None,
        }
    }

    /// Attach a visit cap `α·c·|G|` with coefficient `c`.
    pub fn with_visit_coefficient(mut self, c: f64) -> Self {
        assert!(c.is_finite() && c > 0.0, "coefficient must be positive");
        self.visit_cap = Some((self.max_units as f64 * c).ceil() as usize);
        self
    }

    /// Attach an absolute visit cap.
    pub fn with_visit_cap(mut self, cap: usize) -> Self {
        self.visit_cap = Some(cap);
        self
    }
}

/// Running account of data visited by a resource-bounded procedure.
///
/// Mirrors [`rbq_graph::traverse::VisitStats`] but adds budget-overflow
/// checks against a [`ResourceBudget`] visit cap.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VisitAccount {
    /// Nodes expanded / inspected.
    pub nodes: usize,
    /// Adjacency entries scanned.
    pub edges: usize,
}

impl VisitAccount {
    /// Total data units visited.
    pub fn total(&self) -> usize {
        self.nodes + self.edges
    }

    /// Record one node inspection.
    #[inline]
    pub fn node(&mut self) {
        self.nodes += 1;
    }

    /// Record `n` adjacency-entry scans.
    #[inline]
    pub fn edges(&mut self, n: usize) {
        self.edges += n;
    }

    /// Whether the account exceeds the budget's visit cap (if any).
    pub fn over_cap(&self, budget: &ResourceBudget) -> bool {
        budget.visit_cap.is_some_and(|cap| self.total() > cap)
    }

    /// Merge another account into this one.
    pub fn add_from(&mut self, other: &VisitAccount) {
        self.nodes += other.nodes;
        self.edges += other.edges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_graph::builder::graph_from_edges;

    fn g10() -> rbq_graph::Graph {
        // 5 nodes + 5 edges = size 10.
        graph_from_edges(&["A"; 5], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn from_ratio_floors() {
        let g = g10();
        let b = ResourceBudget::from_ratio(&g, 0.25);
        assert_eq!(b.max_units, 2);
        assert_eq!(b.visit_cap, None);
    }

    #[test]
    fn from_units_derives_alpha() {
        let g = g10();
        let b = ResourceBudget::from_units(&g, 5);
        assert_eq!(b.max_units, 5);
        assert!((b.alpha - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_units_clamps_to_graph_size() {
        // Regression: units > |G| used to yield alpha > 1.0 (and a visit
        // cap beyond c·|G|), violating the documented α ∈ (0, 1] invariant.
        let g = g10();
        let b = ResourceBudget::from_units(&g, 1_000);
        assert_eq!(b.max_units, 10);
        assert_eq!(b.alpha, 1.0);
        let capped = b.with_visit_coefficient(2.0);
        assert_eq!(capped.visit_cap, Some(20));
    }

    #[test]
    #[should_panic(expected = "resource ratio")]
    fn zero_alpha_rejected() {
        let g = g10();
        let _ = ResourceBudget::from_ratio(&g, 0.0);
    }

    #[test]
    #[should_panic(expected = "resource ratio")]
    fn over_one_alpha_rejected() {
        let g = g10();
        let _ = ResourceBudget::from_ratio(&g, 1.5);
    }

    #[test]
    fn visit_coefficient_scales_cap() {
        let g = g10();
        let b = ResourceBudget::from_ratio(&g, 0.5).with_visit_coefficient(3.0);
        assert_eq!(b.visit_cap, Some(15));
    }

    #[test]
    fn account_tracks_and_checks_cap() {
        let g = g10();
        let b = ResourceBudget::from_ratio(&g, 0.5).with_visit_cap(3);
        let mut acc = VisitAccount::default();
        acc.node();
        acc.edges(2);
        assert_eq!(acc.total(), 3);
        assert!(!acc.over_cap(&b));
        acc.edges(1);
        assert!(acc.over_cap(&b));
    }

    #[test]
    fn no_cap_never_over() {
        let g = g10();
        let b = ResourceBudget::from_ratio(&g, 0.5);
        let mut acc = VisitAccount::default();
        acc.edges(1_000_000);
        assert!(!acc.over_cap(&b));
    }
}
