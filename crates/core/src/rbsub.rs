//! **RBSub** — resource-bounded subgraph isomorphism (§4.2).
//!
//! RBSub revises RBSim in two places: the guarded condition and cost
//! estimation are enriched with degree constraints for isomorphism (see
//! [`crate::guard`]), and after `G_Q` is found a subgraph-isomorphism
//! enumerator (VF2, [11]) computes `Q(G_Q)`.

use crate::budget::ResourceBudget;
use crate::guard::Semantics;
use crate::neighbor_index::NeighborIndex;
use crate::rbsim::PatternScratch;
use crate::reduction::{search_reduced_graph_scratch, PatternAnswer, ReductionConfig};
use rbq_graph::{Graph, GraphView};
use rbq_pattern::{vf2_all_output_matches, ResolvedPattern, Vf2Config};

/// Run RBSub: dynamic reduction with the isomorphism guard, then VF2 on
/// `G_Q`.
pub fn rbsub(
    g: &Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
) -> PatternAnswer {
    rbsub_with(g, idx, q, budget, Vf2Config::default())
}

/// [`rbsub`] with explicit VF2 knobs (step caps for adversarial patterns).
pub fn rbsub_with(
    g: &Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
    vf2: Vf2Config,
) -> PatternAnswer {
    let mut scratch = PatternScratch::new();
    let mut out = PatternAnswer::default();
    rbsub_scratch(g, idx, q, budget, vf2, &mut scratch, &mut out);
    out
}

/// [`rbsub_with`] through a reusable [`PatternScratch`], writing the answer
/// into `out`. The reduction half is allocation-free once warm; VF2's
/// enumeration state remains per-call (its size is embedding-dependent).
pub fn rbsub_scratch(
    g: &Graph,
    idx: &NeighborIndex,
    q: &ResolvedPattern,
    budget: &ResourceBudget,
    vf2: Vf2Config,
    scratch: &mut PatternScratch,
    out: &mut PatternAnswer,
) {
    let red = search_reduced_graph_scratch(
        g,
        idx,
        q,
        budget,
        Semantics::Isomorphism,
        ReductionConfig::default(),
        &mut scratch.reduction,
    );
    let outcome = vf2_all_output_matches(q, &red.gq, vf2);
    out.matches = outcome.output_matches;
    out.gq_size = red.gq.size();
    out.gq_nodes = red.gq.num_nodes();
    out.visits = red.visits;
    out.hit_budget = red.hit_budget;
    out.final_b = red.final_b;
    out.rounds = red.rounds;
    scratch.reduction.recycle(red.gq);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::pattern_accuracy;
    use rbq_graph::{GraphBuilder, NodeId};
    use rbq_pattern::pattern::fig1_pattern;
    use rbq_pattern::{vf2_opt, Vf2Config};

    fn example_graph(m: usize, n: usize) -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let michael = b.add_node("Michael");
        let mut hgs = Vec::new();
        for _ in 0..m {
            hgs.push(b.add_node("HG"));
        }
        let cc1 = b.add_node("CC");
        let cc2 = b.add_node("CC");
        let cc3 = b.add_node("CC");
        let mut cls = Vec::new();
        for _ in 0..n {
            cls.push(b.add_node("CL"));
        }
        for &h in &hgs {
            b.add_edge(michael, h);
        }
        b.add_edge(michael, cc1);
        b.add_edge(michael, cc3);
        b.add_edge(cc2, cls[0]);
        let cln_1 = cls[n - 2];
        let cln = cls[n - 1];
        b.add_edge(cc1, cln_1);
        b.add_edge(cc1, cln);
        b.add_edge(cc3, cln);
        let hgm = hgs[m - 1];
        b.add_edge(hgm, cln_1);
        b.add_edge(hgm, cln);
        (b.build(), vec![cln_1, cln])
    }

    #[test]
    fn exact_on_example_graph_with_modest_budget() {
        let (g, answers) = example_graph(10, 20);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, 20);
        let ans = rbsub(&g, &idx, &q, &budget);
        assert_eq!(ans.matches, answers);
        assert!(ans.gq_size <= 20);
    }

    #[test]
    fn agrees_with_vf2opt_at_full_budget() {
        let (g, _) = example_graph(12, 18);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let exact = vf2_opt(&q, &g, Vf2Config::default());
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsub(&g, &idx, &q, &budget);
        assert_eq!(ans.matches, exact.output_matches);
    }

    #[test]
    fn no_false_positives_under_small_budget() {
        let (g, _) = example_graph(10, 20);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let exact = vf2_opt(&q, &g, Vf2Config::default());
        for units in [2usize, 5, 9, 13] {
            let budget = ResourceBudget::from_units(&g, units);
            let ans = rbsub(&g, &idx, &q, &budget);
            for v in &ans.matches {
                assert!(
                    exact.output_matches.contains(v),
                    "isomorphism on a subgraph must under-report, got {v:?}"
                );
            }
        }
    }

    #[test]
    fn accuracy_reaches_one() {
        let (g, _) = example_graph(30, 40);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let exact = vf2_opt(&q, &g, Vf2Config::default());
        let budget = ResourceBudget::from_units(&g, 64);
        let ans = rbsub(&g, &idx, &q, &budget);
        let acc = pattern_accuracy(&exact.output_matches, &ans.matches);
        assert_eq!(acc.f1, 1.0);
    }

    #[test]
    fn step_capped_vf2_still_bounded() {
        let (g, _) = example_graph(10, 20);
        let idx = NeighborIndex::build(&g);
        let q = fig1_pattern().resolve(&g).unwrap();
        let budget = ResourceBudget::from_units(&g, 30);
        let ans = rbsub_with(
            &g,
            &idx,
            &q,
            &budget,
            Vf2Config {
                max_steps: Some(10),
                ..Default::default()
            },
        );
        assert!(ans.gq_size <= 30);
    }
}
