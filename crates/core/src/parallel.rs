//! Parallel batch evaluation of pattern query sets.
//!
//! The data graph and the offline [`NeighborIndex`] are immutable during
//! querying, so a batch of personalized queries partitions across threads
//! freely; each query runs its own dynamic reduction on a private `G_Q`.

use crate::budget::ResourceBudget;
use crate::neighbor_index::NeighborIndex;
use crate::rbsim::rbsim;
use crate::rbsub::rbsub;
use crate::reduction::PatternAnswer;
use rbq_graph::Graph;
use rbq_pattern::ResolvedPattern;

/// Which bounded algorithm a batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAlgorithm {
    /// Strong simulation (RBSim).
    Simulation,
    /// Subgraph isomorphism (RBSub).
    Isomorphism,
}

/// Evaluate `queries` under the shared `budget` with `threads` workers.
///
/// Answers are returned in input order, identical to sequential runs.
pub fn batch_pattern_queries(
    g: &Graph,
    idx: &NeighborIndex,
    queries: &[ResolvedPattern],
    budget: &ResourceBudget,
    algo: BatchAlgorithm,
    threads: usize,
) -> Vec<PatternAnswer> {
    let run = |q: &ResolvedPattern| match algo {
        BatchAlgorithm::Simulation => rbsim(g, idx, q, budget),
        BatchAlgorithm::Isomorphism => rbsub(g, idx, q, budget),
    };
    let threads = threads.max(1).min(queries.len().max(1));
    if threads <= 1 || queries.len() < 2 {
        return queries.iter().map(run).collect();
    }
    let chunk = queries.len().div_ceil(threads);
    let mut results: Vec<Vec<PatternAnswer>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| scope.spawn(move || qs.iter().map(run).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("pattern worker panicked"));
        }
    });
    results.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_workload::{extract_pattern, youtube_like, PatternSpec};

    fn setup() -> (Graph, NeighborIndex, Vec<ResolvedPattern>) {
        let g = youtube_like(2_000, 5);
        let idx = NeighborIndex::build(&g);
        let queries: Vec<ResolvedPattern> = (0..200u64)
            .filter_map(|s| extract_pattern(&g, PatternSpec::new(4, 8), s))
            .filter_map(|p| p.resolve(&g).ok())
            .take(6)
            .collect();
        (g, idx, queries)
    }

    #[test]
    fn parallel_matches_sequential_sim() {
        let (g, idx, queries) = setup();
        if queries.len() < 2 {
            return;
        }
        let budget = ResourceBudget::from_ratio(&g, 0.01);
        let seq = batch_pattern_queries(&g, &idx, &queries, &budget, BatchAlgorithm::Simulation, 1);
        let par = batch_pattern_queries(&g, &idx, &queries, &budget, BatchAlgorithm::Simulation, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.matches, b.matches);
            assert_eq!(a.gq_size, b.gq_size);
        }
    }

    #[test]
    fn parallel_matches_sequential_iso() {
        let (g, idx, queries) = setup();
        if queries.len() < 2 {
            return;
        }
        let budget = ResourceBudget::from_ratio(&g, 0.01);
        let seq =
            batch_pattern_queries(&g, &idx, &queries, &budget, BatchAlgorithm::Isomorphism, 1);
        let par =
            batch_pattern_queries(&g, &idx, &queries, &budget, BatchAlgorithm::Isomorphism, 3);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.matches, b.matches);
        }
    }

    #[test]
    fn empty_batch_ok() {
        let (g, idx, _) = setup();
        let budget = ResourceBudget::from_ratio(&g, 0.01);
        let out = batch_pattern_queries(&g, &idx, &[], &budget, BatchAlgorithm::Simulation, 8);
        assert!(out.is_empty());
    }
}
