//! Parallel batch evaluation of pattern query sets.
//!
//! The data graph and the offline [`NeighborIndex`] are immutable during
//! querying, so a batch of personalized queries partitions across threads
//! freely; each query runs its own dynamic reduction on a private `G_Q`.

use crate::budget::ResourceBudget;
use crate::neighbor_index::NeighborIndex;
use crate::rbsim::rbsim;
use crate::rbsub::rbsub;
use crate::reduction::PatternAnswer;
use rbq_graph::Graph;
use rbq_pattern::ResolvedPattern;
use std::fmt;

/// A worker thread of [`try_batch_pattern_queries`] panicked.
///
/// The batch itself is not lost: every other worker is still joined, and
/// the caller can fall back to sequential evaluation (what
/// [`batch_pattern_queries`] does) or surface the failure typed — the same
/// containment contract as `rbq_reach::parallel`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelError {
    /// Zero-based index of the panicked chunk.
    pub chunk: usize,
    /// The panic message, when the payload was a string.
    pub message: Option<String>,
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.message {
            Some(m) => write!(f, "pattern query worker {} panicked: {m}", self.chunk),
            None => write!(f, "pattern query worker {} panicked", self.chunk),
        }
    }
}

impl std::error::Error for ParallelError {}

/// Which bounded algorithm a batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAlgorithm {
    /// Strong simulation (RBSim).
    Simulation,
    /// Subgraph isomorphism (RBSub).
    Isomorphism,
}

/// Evaluate `queries` under the shared `budget` with `threads` workers.
///
/// Answers are returned in input order, identical to sequential runs.
/// A panicked worker degrades to sequential re-evaluation instead of
/// aborting the batch (see [`try_batch_pattern_queries`] for the typed
/// variant).
pub fn batch_pattern_queries(
    g: &Graph,
    idx: &NeighborIndex,
    queries: &[ResolvedPattern],
    budget: &ResourceBudget,
    algo: BatchAlgorithm,
    threads: usize,
) -> Vec<PatternAnswer> {
    match try_batch_pattern_queries(g, idx, queries, budget, algo, threads) {
        Ok(r) => r,
        // A panicked worker does not abort the process: recompute the
        // whole batch sequentially in the caller's thread, so a transient
        // failure yields correct answers and a deterministic one
        // resurfaces as an ordinary catchable panic in the caller.
        Err(_) => {
            let run = |q: &ResolvedPattern| match algo {
                BatchAlgorithm::Simulation => rbsim(g, idx, q, budget),
                BatchAlgorithm::Isomorphism => rbsub(g, idx, q, budget),
            };
            queries.iter().map(run).collect()
        }
    }
}

/// [`batch_pattern_queries`] with typed worker-failure propagation: a
/// panicked worker yields `Err(ParallelError)` after every other worker
/// has been joined, instead of re-panicking in the caller.
pub fn try_batch_pattern_queries(
    g: &Graph,
    idx: &NeighborIndex,
    queries: &[ResolvedPattern],
    budget: &ResourceBudget,
    algo: BatchAlgorithm,
    threads: usize,
) -> Result<Vec<PatternAnswer>, ParallelError> {
    let run = |q: &ResolvedPattern| match algo {
        BatchAlgorithm::Simulation => rbsim(g, idx, q, budget),
        BatchAlgorithm::Isomorphism => rbsub(g, idx, q, budget),
    };
    let threads = threads.max(1).min(queries.len().max(1));
    if threads <= 1 || queries.len() < 2 {
        return Ok(queries.iter().map(run).collect());
    }
    let chunk = queries.len().div_ceil(threads);
    let mut results: Vec<Vec<PatternAnswer>> = Vec::with_capacity(threads);
    let mut failed: Option<ParallelError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| scope.spawn(move || qs.iter().map(run).collect::<Vec<_>>()))
            .collect();
        for (ci, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => {
                    // First failure wins; keep joining so no worker leaks.
                    if failed.is_none() {
                        let message = payload
                            .downcast_ref::<&'static str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned());
                        failed = Some(ParallelError { chunk: ci, message });
                    }
                }
            }
        }
    });
    match failed {
        Some(e) => Err(e),
        None => Ok(results.concat()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbq_workload::{extract_pattern, youtube_like, PatternSpec};

    fn setup() -> (Graph, NeighborIndex, Vec<ResolvedPattern>) {
        let g = youtube_like(2_000, 5);
        let idx = NeighborIndex::build(&g);
        let queries: Vec<ResolvedPattern> = (0..200u64)
            .filter_map(|s| extract_pattern(&g, PatternSpec::new(4, 8), s))
            .filter_map(|p| p.resolve(&g).ok())
            .take(6)
            .collect();
        (g, idx, queries)
    }

    #[test]
    fn parallel_matches_sequential_sim() {
        let (g, idx, queries) = setup();
        if queries.len() < 2 {
            return;
        }
        let budget = ResourceBudget::from_ratio(&g, 0.01);
        let seq = batch_pattern_queries(&g, &idx, &queries, &budget, BatchAlgorithm::Simulation, 1);
        let par = batch_pattern_queries(&g, &idx, &queries, &budget, BatchAlgorithm::Simulation, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.matches, b.matches);
            assert_eq!(a.gq_size, b.gq_size);
        }
    }

    #[test]
    fn parallel_matches_sequential_iso() {
        let (g, idx, queries) = setup();
        if queries.len() < 2 {
            return;
        }
        let budget = ResourceBudget::from_ratio(&g, 0.01);
        let seq =
            batch_pattern_queries(&g, &idx, &queries, &budget, BatchAlgorithm::Isomorphism, 1);
        let par =
            batch_pattern_queries(&g, &idx, &queries, &budget, BatchAlgorithm::Isomorphism, 3);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.matches, b.matches);
        }
    }

    #[test]
    fn empty_batch_ok() {
        let (g, idx, _) = setup();
        let budget = ResourceBudget::from_ratio(&g, 0.01);
        let out = batch_pattern_queries(&g, &idx, &[], &budget, BatchAlgorithm::Simulation, 8);
        assert!(out.is_empty());
    }
}
