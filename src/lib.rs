#![warn(missing_docs)]
//! # rbq — Querying Big Graphs within Bounded Resources
//!
//! Facade crate re-exporting the full `rbq` workspace: a Rust implementation
//! of *"Querying Big Graphs within Bounded Resources"* (Fan, Wang & Wu,
//! SIGMOD 2014).
//!
//! Given a query `Q`, a graph `G`, and a resource ratio `α ∈ (0, 1)`, the
//! library answers `Q` while visiting only an `α`-bounded fraction of `G`:
//!
//! * [`rbq_core::rbsim`] / [`rbq_core::rbsub`] — resource-bounded graph
//!   pattern matching (strong simulation / subgraph isomorphism);
//! * [`rbq_reach`] — resource-bounded reachability via a hierarchical
//!   landmark index;
//! * [`rbq_pattern`] — the unbounded baselines (`Match`, `MatchOpt`, `VF2`,
//!   `VF2OPT`);
//! * [`rbq_graph`] — the graph substrate;
//! * [`rbq_engine`] — the concurrent mixed-workload engine: shared lazy
//!   indexes, a canonical-signature reduction cache, batch scheduling
//!   with per-query plus aggregate budget accounting, typed errors, and
//!   the versioned query/answer wire format;
//! * [`rbq_router`] — sharded serving: a partition-aware router fanning
//!   batches across per-shard engine replicas with deterministic merge
//!   (`Router(k) ≡ Engine(1)`, pinned differentially);
//! * [`rbq_workload`] — synthetic datasets and query generators mirroring
//!   the paper's evaluation, including mixed engine workloads.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use rbq_core;
pub use rbq_engine;
pub use rbq_graph;
pub use rbq_pattern;
pub use rbq_reach;
pub use rbq_router;
pub use rbq_workload;
