//! `rbq` — command-line front end for resource-bounded graph querying.
//!
//! ```text
//! rbq generate --kind youtube --nodes 20000 --seed 42 -o g.txt
//! rbq stats g.txt
//! rbq compress g.txt
//! rbq reach g.txt 17 4242 --alpha 0.01
//! rbq pattern g.txt --spec 4,8 --alpha 0.001 --seed 7
//! ```
//!
//! Graphs use the plain-text format of `rbq_graph::io` (`n <id> <label>` /
//! `e <src> <dst>` lines).

use rbq::rbq_core::{pattern_accuracy, rbsim, NeighborIndex, ResourceBudget};
use rbq::rbq_graph::{io as gio, Graph, GraphView, NodeId};
use rbq::rbq_pattern::{bisimulation_compress, match_opt};
use rbq::rbq_reach::{compress_for_reachability, HierarchicalIndex};
use rbq::rbq_workload::{extract_pattern, PatternSpec};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: rbq <generate|stats|compress|reach|pattern> [args]\n\
                 see module docs for details"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    let rest = &args[1..];
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "compress" => cmd_compress(rest),
        "reach" => cmd_reach(rest),
        "pattern" => cmd_pattern(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Extract `--flag value` from an argument list. Returns remaining
/// positional arguments.
fn parse_flags<'a>(
    args: &'a [String],
    flags: &mut [(&str, &mut Option<String>)],
) -> Result<Vec<&'a str>, String> {
    let mut positional = Vec::new();
    let mut i = 0;
    'outer: while i < args.len() {
        for (name, slot) in flags.iter_mut() {
            if args[i] == format!("--{name}") || args[i] == format!("-{}", &name[..1]) {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                **slot = Some(v.clone());
                i += 1;
                continue 'outer;
            }
        }
        if args[i].starts_with('-') {
            return Err(format!("unknown flag {:?}", args[i]));
        }
        positional.push(args[i].as_str());
        i += 1;
    }
    Ok(positional)
}

fn parse_spec(s: &str) -> Result<PatternSpec, String> {
    let (a, b) = s
        .split_once(',')
        .ok_or_else(|| format!("bad --spec {s:?}, expected N,M"))?;
    let nodes: usize = a
        .trim()
        .parse()
        .map_err(|_| format!("bad node count {a:?}"))?;
    let edges: usize = b
        .trim()
        .parse()
        .map_err(|_| format!("bad edge count {b:?}"))?;
    if nodes == 0 {
        return Err("pattern needs at least one node".into());
    }
    Ok(PatternSpec::new(nodes, edges))
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    gio::read_graph(BufReader::new(f)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (mut kind, mut nodes, mut seed, mut out) = (None, None, None, None);
    let _ = parse_flags(
        args,
        &mut [
            ("kind", &mut kind),
            ("nodes", &mut nodes),
            ("seed", &mut seed),
            ("out", &mut out),
        ],
    )?;
    let kind = kind.unwrap_or_else(|| "youtube".into());
    let nodes: usize = nodes
        .unwrap_or_else(|| "10000".into())
        .parse()
        .map_err(|_| "bad --nodes")?;
    let seed: u64 = seed
        .unwrap_or_else(|| "42".into())
        .parse()
        .map_err(|_| "bad --seed")?;
    let out = out.ok_or("missing --out FILE")?;
    let g = match kind.as_str() {
        "youtube" => rbq::rbq_workload::youtube_like(nodes, seed),
        "yahoo" => rbq::rbq_workload::yahoo_like(nodes, seed),
        "uniform" => rbq::rbq_workload::uniform_random(nodes, 2 * nodes, 15, seed),
        "social" => rbq::rbq_workload::social_groups(8, nodes / 8, nodes / 4, seed),
        other => {
            return Err(format!(
                "unknown kind {other:?} (youtube|yahoo|uniform|social)"
            ))
        }
    };
    let f = File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
    gio::write_graph(&g, BufWriter::new(f)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} nodes, {} edges to {out}",
        g.node_count(),
        g.edge_count()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let pos = parse_flags(args, &mut [])?;
    let path = pos.first().ok_or("missing graph file")?;
    let g = load_graph(path)?;
    let ds = rbq::rbq_graph::stats::degree_stats(&g);
    println!("nodes      {}", g.node_count());
    println!("edges      {}", g.edge_count());
    println!("size |G|   {}", g.size());
    println!("labels     {}", g.labels().len());
    println!("max degree {}", ds.max_degree);
    println!("avg degree {:.2}", ds.avg_degree);
    println!(
        "label fanout f = {}",
        rbq::rbq_graph::stats::max_label_fanout(&g)
    );
    Ok(())
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let pos = parse_flags(args, &mut [])?;
    let path = pos.first().ok_or("missing graph file")?;
    let g = load_graph(path)?;
    let reach = compress_for_reachability(&g);
    println!(
        "reachability compression: {} -> {} units ({:.1}%)",
        g.size(),
        reach.dag.size(),
        reach.ratio(&g) * 100.0
    );
    let sim = bisimulation_compress(&g);
    println!(
        "simulation compression:   {} -> {} units ({:.1}%)",
        g.size(),
        sim.quotient.size(),
        sim.ratio(&g) * 100.0
    );
    Ok(())
}

fn cmd_reach(args: &[String]) -> Result<(), String> {
    let mut alpha = None;
    let pos = parse_flags(args, &mut [("alpha", &mut alpha)])?;
    let [path, s, t] = pos.as_slice() else {
        return Err("usage: reach GRAPH SRC DST [--alpha A]".into());
    };
    let alpha: f64 = alpha
        .unwrap_or_else(|| "0.01".into())
        .parse()
        .map_err(|_| "bad --alpha")?;
    let g = load_graph(path)?;
    let s: u32 = s.parse().map_err(|_| "bad source id")?;
    let t: u32 = t.parse().map_err(|_| "bad target id")?;
    if s as usize >= g.node_count() || t as usize >= g.node_count() {
        return Err("node id out of range".into());
    }
    let idx = HierarchicalIndex::build(&g, alpha);
    let ans = idx.query(NodeId(s), NodeId(t));
    let exact = rbq::rbq_graph::traverse::reaches(&g, NodeId(s), NodeId(t));
    println!(
        "RBReach[alpha={alpha}]: {} (visited {} of cap {})",
        ans.reachable,
        ans.visits,
        idx.visit_cap()
    );
    println!(
        "exact BFS:            {} (visited {} data units)",
        exact.0,
        exact.1.total()
    );
    Ok(())
}

fn cmd_pattern(args: &[String]) -> Result<(), String> {
    let (mut spec, mut alpha, mut seed) = (None, None, None);
    let pos = parse_flags(
        args,
        &mut [
            ("spec", &mut spec),
            ("alpha", &mut alpha),
            ("seed", &mut seed),
        ],
    )?;
    let path = pos.first().ok_or("missing graph file")?;
    let spec = parse_spec(&spec.unwrap_or_else(|| "4,8".into()))?;
    let alpha: f64 = alpha
        .unwrap_or_else(|| "0.001".into())
        .parse()
        .map_err(|_| "bad --alpha")?;
    let seed: u64 = seed
        .unwrap_or_else(|| "7".into())
        .parse()
        .map_err(|_| "bad --seed")?;
    let g = load_graph(path)?;
    let q = (0..200u64)
        .find_map(|s| extract_pattern(&g, spec, seed.wrapping_add(s)))
        .ok_or("could not extract a pattern (graph too small or no ME node)")?
        .resolve(&g)
        .map_err(|e| e.to_string())?;
    println!(
        "pattern: {} nodes, {} edges, d_Q = {}",
        q.pattern().node_count(),
        q.pattern().edge_count(),
        q.dq()
    );
    let idx = NeighborIndex::build(&g);
    let budget = ResourceBudget::from_ratio(&g, alpha);
    let ans = rbsim(&g, &idx, &q, &budget);
    println!(
        "RBSim[alpha={alpha}]: {} matches, |G_Q| = {} of budget {}, visited {}",
        ans.matches.len(),
        ans.gq_size,
        budget.max_units,
        ans.visits.total()
    );
    let exact = match_opt(&q, &g);
    let acc = pattern_accuracy(&exact, &ans.matches);
    println!(
        "exact (MatchOpt):     {} matches; accuracy {:.1}%",
        exact.len(),
        acc.f1 * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spec_ok() {
        let s = parse_spec("4,8").unwrap();
        assert_eq!((s.nodes, s.edges), (4, 8));
        let s = parse_spec(" 6 , 12 ").unwrap();
        assert_eq!((s.nodes, s.edges), (6, 12));
    }

    #[test]
    fn parse_spec_errors() {
        assert!(parse_spec("4").is_err());
        assert!(parse_spec("a,b").is_err());
        assert!(parse_spec("0,3").is_err());
    }

    #[test]
    fn parse_flags_extracts_pairs() {
        let args: Vec<String> = ["--alpha", "0.5", "file.txt", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (mut alpha, mut seed) = (None, None);
        let pos = parse_flags(&args, &mut [("alpha", &mut alpha), ("seed", &mut seed)]).unwrap();
        assert_eq!(alpha.as_deref(), Some("0.5"));
        assert_eq!(seed.as_deref(), Some("9"));
        assert_eq!(pos, vec!["file.txt"]);
    }

    #[test]
    fn parse_flags_rejects_unknown() {
        let args: Vec<String> = ["--bogus", "1"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args, &mut []).is_err());
    }

    #[test]
    fn parse_flags_missing_value() {
        let args: Vec<String> = ["--alpha"].iter().map(|s| s.to_string()).collect();
        let mut alpha = None;
        assert!(parse_flags(&args, &mut [("alpha", &mut alpha)]).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }
}
