//! `rbq` — command-line front end for resource-bounded graph querying.
//!
//! ```text
//! rbq generate --kind youtube --nodes 20000 --seed 42 -o g.txt
//! rbq stats g.txt
//! rbq compress g.txt
//! rbq reach g.txt 17 4242 --alpha 0.01
//! rbq pattern g.txt --spec 4,8 --alpha 0.001 --seed 7
//! rbq workload g.txt --count 200 --seed 7 --out q.txt
//! rbq batch g.txt q.txt --alpha 0.005 --threads 8
//! rbq batch g.txt q.txt --shards 4 --partitioner scc --answers a.txt
//! rbq ingest g.txt d.txt --out g2.txt
//! rbq snapshot g.txt --out state/
//! rbq ingest g.txt d.txt --durable state/
//! rbq recover state/ --queries q.txt --answers a.txt
//! ```
//!
//! Graphs use the plain-text format of `rbq_graph::io` (`n <id> <label>` /
//! `e <src> <dst>` lines); query and answer files use the versioned wire
//! format of `rbq_engine::wire` (`#rbq-queries v2` / `#rbq-answers v2`
//! headers over the one-line `r <src> <dst>` / `s|i <up> <uo> <labels>
//! <edges>` query serialization).

use rbq::rbq_core::{pattern_accuracy, rbsim, NeighborIndex, ResourceBudget};
use rbq::rbq_engine::wire::{parse_delta_file, parse_query_file, write_answer_file};
use rbq::rbq_engine::{
    AdmissionPolicy, Answer, ApplyError, Durability, DurabilityConfig, DurabilityError, Engine,
    EngineConfig, EngineError, Query, QueryParseError, WireWriteError, QUERY_FILE_HEADER,
};
use rbq::rbq_graph::{io as gio, DeltaError, Graph, GraphView, NodeId};
use rbq::rbq_pattern::{bisimulation_compress, match_opt};
use rbq::rbq_reach::{compress_for_reachability, HierarchicalIndex};
use rbq::rbq_router::{PartitionerKind, Router, RouterError};
use rbq::rbq_workload::{extract_pattern, sample_mixed_workload, MixedWorkloadSpec, PatternSpec};
use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;

/// Top-level CLI error: typed wrappers around the library layers plus
/// plain usage messages. Every variant renders the same text the old
/// string-based plumbing printed, and the exit code stays 2.
#[derive(Debug)]
enum CliError {
    /// Usage/argument errors and ad-hoc messages.
    Msg(String),
    /// Engine configuration or resolution errors, wrapped losslessly.
    Engine(EngineError),
    /// A query file failed to parse (the wire layer tags the line; the
    /// CLI adds the path).
    Parse {
        /// Path of the offending file.
        path: String,
        /// The typed parse error, line-tagged.
        source: QueryParseError,
    },
    /// Router construction failed.
    Router(RouterError),
    /// A delta batch was rejected at apply time.
    Delta(DeltaError),
    /// A durability operation (snapshot, WAL, recovery) failed.
    Durability(DurabilityError),
    /// Writing a wire-format file failed.
    Wire(WireWriteError),
    /// Other I/O.
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Msg(m) => write!(f, "{m}"),
            CliError::Engine(e) => write!(f, "{e}"),
            CliError::Parse { path, source } => write!(f, "{path}: {source}"),
            CliError::Router(e) => write!(f, "{e}"),
            CliError::Delta(e) => write!(f, "{e}"),
            CliError::Durability(e) => write!(f, "{e}"),
            CliError::Wire(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Msg(_) => None,
            CliError::Engine(e) => Some(e),
            CliError::Parse { source, .. } => Some(source),
            CliError::Router(e) => Some(e),
            CliError::Delta(e) => Some(e),
            CliError::Durability(e) => Some(e),
            CliError::Wire(e) => Some(e),
            CliError::Io(e) => Some(e),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Msg(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Msg(m.to_owned())
    }
}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        CliError::Engine(e)
    }
}

impl From<RouterError> for CliError {
    fn from(e: RouterError) -> Self {
        CliError::Router(e)
    }
}

impl From<WireWriteError> for CliError {
    fn from(e: WireWriteError) -> Self {
        CliError::Wire(e)
    }
}

impl From<DeltaError> for CliError {
    fn from(e: DeltaError) -> Self {
        CliError::Delta(e)
    }
}

impl From<DurabilityError> for CliError {
    fn from(e: DurabilityError) -> Self {
        CliError::Durability(e)
    }
}

impl From<ApplyError> for CliError {
    fn from(e: ApplyError) -> Self {
        match e {
            ApplyError::Delta(d) => CliError::Delta(d),
            ApplyError::Durability(d) => CliError::Durability(d),
        }
    }
}

impl From<QueryParseError> for CliError {
    fn from(e: QueryParseError) -> Self {
        CliError::Wire(WireWriteError::Format(e))
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: rbq <generate|stats|compress|reach|pattern|workload|batch|ingest|snapshot|recover|lint> [args]\n\
                 see module docs for details"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args.first().ok_or("missing subcommand")?;
    let rest = &args[1..];
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "compress" => cmd_compress(rest),
        "reach" => cmd_reach(rest),
        "pattern" => cmd_pattern(rest),
        "workload" => cmd_workload(rest),
        "batch" => cmd_batch(rest),
        "ingest" => cmd_ingest(rest),
        "snapshot" => cmd_snapshot(rest),
        "recover" => cmd_recover(rest),
        "lint" => cmd_lint(rest),
        other => Err(format!("unknown subcommand {other:?}").into()),
    }
}

/// `lint [ROOT]` — run the `rbq-lint` static-analysis pass over the
/// workspace at (or above) ROOT, defaulting to the current directory.
/// Findings print to stderr as `file:line: rule-id: message`; any finding
/// exits the process with status 1, matching the standalone `rbq-lint`
/// binary so either entry point can gate CI.
fn cmd_lint(args: &[String]) -> Result<(), CliError> {
    if args.len() > 1 {
        return Err("usage: lint [ROOT]".into());
    }
    let start = match args.first() {
        Some(p) => std::path::PathBuf::from(p),
        None => std::env::current_dir()?,
    };
    let root = rbq_lint::find_workspace_root(&start)
        .ok_or_else(|| format!("lint: no workspace root at or above {}", start.display()))?;
    if rbq_lint::check_and_report(&root)? > 0 {
        std::process::exit(1);
    }
    Ok(())
}

/// Extract `--flag value` from an argument list. Returns remaining
/// positional arguments.
fn parse_flags<'a>(
    args: &'a [String],
    flags: &mut [(&str, &mut Option<String>)],
) -> Result<Vec<&'a str>, String> {
    let mut positional = Vec::new();
    let mut i = 0;
    'outer: while i < args.len() {
        for (name, slot) in flags.iter_mut() {
            if args[i] == format!("--{name}") || args[i] == format!("-{}", &name[..1]) {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                **slot = Some(v.clone());
                i += 1;
                continue 'outer;
            }
        }
        if args[i].starts_with('-') {
            return Err(format!("unknown flag {:?}", args[i]));
        }
        positional.push(args[i].as_str());
        i += 1;
    }
    Ok(positional)
}

fn parse_spec(s: &str) -> Result<PatternSpec, String> {
    let (a, b) = s
        .split_once(',')
        .ok_or_else(|| format!("bad --spec {s:?}, expected N,M"))?;
    let nodes: usize = a
        .trim()
        .parse()
        .map_err(|_| format!("bad node count {a:?}"))?;
    let edges: usize = b
        .trim()
        .parse()
        .map_err(|_| format!("bad edge count {b:?}"))?;
    if nodes == 0 {
        return Err("pattern needs at least one node".into());
    }
    Ok(PatternSpec::new(nodes, edges))
}

/// Parse a resource ratio, rejecting anything outside `(0, 1]` — the
/// library layers `assert!` on bad ratios, and a panic is not an
/// acceptable CLI failure mode.
fn parse_alpha(s: &str, what: &str) -> Result<f64, String> {
    let a: f64 = s.parse().map_err(|_| format!("bad {what} {s:?}"))?;
    if !(a.is_finite() && a > 0.0 && a <= 1.0) {
        return Err(format!("{what} must lie in (0, 1], got {s}"));
    }
    Ok(a)
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    gio::read_graph(BufReader::new(f)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let (mut kind, mut nodes, mut seed, mut out) = (None, None, None, None);
    let _ = parse_flags(
        args,
        &mut [
            ("kind", &mut kind),
            ("nodes", &mut nodes),
            ("seed", &mut seed),
            ("out", &mut out),
        ],
    )?;
    let kind = kind.unwrap_or_else(|| "youtube".into());
    let nodes: usize = nodes
        .unwrap_or_else(|| "10000".into())
        .parse()
        .map_err(|_| "bad --nodes")?;
    let seed: u64 = seed
        .unwrap_or_else(|| "42".into())
        .parse()
        .map_err(|_| "bad --seed")?;
    let out = out.ok_or("missing --out FILE")?;
    let g = match kind.as_str() {
        "youtube" => rbq::rbq_workload::youtube_like(nodes, seed),
        "yahoo" => rbq::rbq_workload::yahoo_like(nodes, seed),
        "uniform" => rbq::rbq_workload::uniform_random(nodes, 2 * nodes, 15, seed),
        "social" => rbq::rbq_workload::social_groups(8, nodes / 8, nodes / 4, seed),
        other => {
            return Err(format!("unknown kind {other:?} (youtube|yahoo|uniform|social)").into())
        }
    };
    gio::atomic_write(std::path::Path::new(&out), |w| gio::write_graph(&g, w))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} nodes, {} edges to {out}",
        g.node_count(),
        g.edge_count()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let pos = parse_flags(args, &mut [])?;
    let path = pos.first().ok_or("missing graph file")?;
    let g = load_graph(path)?;
    let ds = rbq::rbq_graph::stats::degree_stats(&g);
    println!("nodes      {}", g.node_count());
    println!("edges      {}", g.edge_count());
    println!("size |G|   {}", g.size());
    println!("labels     {}", g.labels().len());
    println!("max degree {}", ds.max_degree);
    println!("avg degree {:.2}", ds.avg_degree);
    println!(
        "label fanout f = {}",
        rbq::rbq_graph::stats::max_label_fanout(&g)
    );
    Ok(())
}

fn cmd_compress(args: &[String]) -> Result<(), CliError> {
    let pos = parse_flags(args, &mut [])?;
    let path = pos.first().ok_or("missing graph file")?;
    let g = load_graph(path)?;
    let reach = compress_for_reachability(&g);
    println!(
        "reachability compression: {} -> {} units ({:.1}%)",
        g.size(),
        reach.dag.size(),
        reach.ratio(&g) * 100.0
    );
    let sim = bisimulation_compress(&g);
    println!(
        "simulation compression:   {} -> {} units ({:.1}%)",
        g.size(),
        sim.quotient.size(),
        sim.ratio(&g) * 100.0
    );
    Ok(())
}

fn cmd_reach(args: &[String]) -> Result<(), CliError> {
    let mut alpha = None;
    let pos = parse_flags(args, &mut [("alpha", &mut alpha)])?;
    let [path, s, t] = pos.as_slice() else {
        return Err("usage: reach GRAPH SRC DST [--alpha A]".into());
    };
    let alpha = parse_alpha(&alpha.unwrap_or_else(|| "0.01".into()), "--alpha")?;
    let g = load_graph(path)?;
    let s: u32 = s.parse().map_err(|_| format!("bad source id {s:?}"))?;
    let t: u32 = t.parse().map_err(|_| format!("bad target id {t:?}"))?;
    if s as usize >= g.node_count() || t as usize >= g.node_count() {
        return Err("node id out of range".into());
    }
    let idx = HierarchicalIndex::build(&g, alpha);
    let ans = idx.query(NodeId(s), NodeId(t));
    let exact = rbq::rbq_graph::traverse::reaches(&g, NodeId(s), NodeId(t));
    println!(
        "RBReach[alpha={alpha}]: {} (visited {} of cap {})",
        ans.reachable,
        ans.visits,
        idx.visit_cap()
    );
    println!(
        "exact BFS:            {} (visited {} data units)",
        exact.0,
        exact.1.total()
    );
    Ok(())
}

fn cmd_pattern(args: &[String]) -> Result<(), CliError> {
    let (mut spec, mut alpha, mut seed) = (None, None, None);
    let pos = parse_flags(
        args,
        &mut [
            ("spec", &mut spec),
            ("alpha", &mut alpha),
            ("seed", &mut seed),
        ],
    )?;
    let path = pos.first().ok_or("missing graph file")?;
    let spec = parse_spec(&spec.unwrap_or_else(|| "4,8".into()))?;
    let alpha = parse_alpha(&alpha.unwrap_or_else(|| "0.001".into()), "--alpha")?;
    let seed: u64 = seed
        .unwrap_or_else(|| "7".into())
        .parse()
        .map_err(|_| "bad --seed")?;
    let g = load_graph(path)?;
    let q = (0..200u64)
        .find_map(|s| extract_pattern(&g, spec, seed.wrapping_add(s)))
        .ok_or("could not extract a pattern (graph too small or no ME node)")?
        .resolve(&g)
        .map_err(|e| e.to_string())?;
    println!(
        "pattern: {} nodes, {} edges, d_Q = {}",
        q.pattern().node_count(),
        q.pattern().edge_count(),
        q.dq()
    );
    let idx = NeighborIndex::build(&g);
    let budget = ResourceBudget::from_ratio(&g, alpha);
    let ans = rbsim(&g, &idx, &q, &budget);
    println!(
        "RBSim[alpha={alpha}]: {} matches, |G_Q| = {} of budget {}, visited {}",
        ans.matches.len(),
        ans.gq_size,
        budget.max_units,
        ans.visits.total()
    );
    let exact = match_opt(&q, &g);
    let acc = pattern_accuracy(&exact, &ans.matches);
    println!(
        "exact (MatchOpt):     {} matches; accuracy {:.1}%",
        exact.len(),
        acc.f1 * 100.0
    );
    Ok(())
}

fn cmd_workload(args: &[String]) -> Result<(), CliError> {
    let (mut count, mut seed, mut out, mut spec) = (None, None, None, None);
    let (mut reach_frac, mut iso_frac, mut repeat_frac) = (None, None, None);
    let pos = parse_flags(
        args,
        &mut [
            ("count", &mut count),
            ("seed", &mut seed),
            ("out", &mut out),
            ("spec", &mut spec),
            ("reach-frac", &mut reach_frac),
            ("iso-frac", &mut iso_frac),
            ("repeat-frac", &mut repeat_frac),
        ],
    )?;
    let path = pos.first().ok_or("missing graph file")?;
    let out = out.ok_or("missing --out FILE")?;
    let parse_frac = |s: Option<String>, def: f64, what: &str| -> Result<f64, String> {
        match s {
            None => Ok(def),
            Some(s) => {
                let f: f64 = s.parse().map_err(|_| format!("bad {what} {s:?}"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("{what} must lie in [0, 1], got {s}"));
                }
                Ok(f)
            }
        }
    };
    let mut mspec = MixedWorkloadSpec {
        count: count
            .unwrap_or_else(|| "200".into())
            .parse()
            .map_err(|_| "bad --count")?,
        reach_fraction: parse_frac(reach_frac, 0.4, "--reach-frac")?,
        iso_fraction: parse_frac(iso_frac, 0.3, "--iso-frac")?,
        repeat_fraction: parse_frac(repeat_frac, 0.3, "--repeat-frac")?,
        ..Default::default()
    };
    if let Some(s) = spec {
        mspec.spec = parse_spec(&s)?;
    }
    let seed: u64 = seed
        .unwrap_or_else(|| "7".into())
        .parse()
        .map_err(|_| "bad --seed")?;
    let g = load_graph(path)?;
    let queries = sample_mixed_workload(&g, &mspec, seed);
    // Serialize before opening the file: a to_line failure must not leave
    // a half-written artifact, and the write itself is atomic.
    let mut lines = Vec::with_capacity(queries.len());
    for q in &queries {
        lines.push(q.to_line()?);
    }
    gio::atomic_write(std::path::Path::new(&out), |w| {
        writeln!(w, "{QUERY_FILE_HEADER}")?;
        writeln!(
            w,
            "# rbq mixed workload: {} queries, seed {seed}",
            lines.len()
        )?;
        for line in &lines {
            writeln!(w, "{line}")?;
        }
        Ok(())
    })
    .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {} queries to {out}", queries.len());
    Ok(())
}

fn load_queries(path: &str) -> Result<Vec<Query>, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let file = parse_query_file(&text).map_err(|e| CliError::Parse {
        path: path.to_owned(),
        source: e,
    })?;
    if file.headerless {
        eprintln!("warning: {path} has no #rbq-queries header; reading it as v1");
    }
    Ok(file.queries)
}

fn cmd_batch(args: &[String]) -> Result<(), CliError> {
    let (mut alpha, mut reach_alpha, mut threads, mut cache, mut aggregate, mut verbose) =
        (None, None, None, None, None, None);
    let (mut shards, mut partitioner, mut answers) = (None, None, None);
    let (mut timeout_ms, mut admission) = (None, None);
    let pos = parse_flags(
        args,
        &mut [
            ("alpha", &mut alpha),
            ("reach-alpha", &mut reach_alpha),
            ("threads", &mut threads),
            ("cache", &mut cache),
            ("aggregate", &mut aggregate),
            ("verbose", &mut verbose),
            ("shards", &mut shards),
            ("partitioner", &mut partitioner),
            ("answers", &mut answers),
            ("timeout-ms", &mut timeout_ms),
            ("admission", &mut admission),
        ],
    )?;
    let [graph_path, query_path] = pos.as_slice() else {
        return Err("usage: batch GRAPH QUERYFILE [--alpha A] [--reach-alpha A] [--threads T] [--cache N] [--aggregate N] [--timeout-ms MS] [--admission input|sjf] [--shards K] [--partitioner label|scc] [--answers FILE] [--verbose 1]".into());
    };
    let alpha = parse_alpha(&alpha.unwrap_or_else(|| "0.01".into()), "--alpha")?;
    let reach_alpha = parse_alpha(
        &reach_alpha.unwrap_or_else(|| "0.05".into()),
        "--reach-alpha",
    )?;
    let threads: usize = threads
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "bad --threads")?;
    let cache: usize = cache
        .unwrap_or_else(|| "1024".into())
        .parse()
        .map_err(|_| "bad --cache")?;
    let aggregate = match aggregate {
        None => None,
        Some(s) => Some(s.parse::<usize>().map_err(|_| "bad --aggregate")?),
    };
    let timeout = match timeout_ms {
        None => None,
        Some(s) => Some(std::time::Duration::from_millis(
            s.parse::<u64>().map_err(|_| "bad --timeout-ms")?,
        )),
    };
    let admission = match admission.as_deref() {
        None | Some("input") => AdmissionPolicy::InputOrder,
        Some("sjf") => AdmissionPolicy::ShortestJobFirst,
        Some(other) => return Err(format!("bad --admission {other:?} (want input|sjf)").into()),
    };
    let verbose = verbose.is_some_and(|v| v != "0");
    let shards: usize = shards
        .unwrap_or_else(|| "1".into())
        .parse()
        .map_err(|_| "bad --shards")?;
    let partitioner: PartitionerKind = partitioner
        .unwrap_or_else(|| "scc".into())
        .parse()
        .map_err(CliError::Msg)?;

    let g = Arc::new(load_graph(graph_path)?);
    let queries = load_queries(query_path)?;
    let builder = EngineConfig::builder()
        .pattern_alpha(alpha)
        .reach_alpha(reach_alpha)
        .cache_capacity(cache)
        .aggregate_visit_budget(aggregate)
        .batch_timeout(timeout)
        .admission(admission);
    let builder = if threads == 0 {
        builder.auto_threads()
    } else {
        builder.threads(threads)
    };
    let cfg = builder.build()?;
    let max_units = ResourceBudget::from_ratio(&*g, alpha).max_units;

    let start = std::time::Instant::now();
    // shards == 0 deliberately falls through to Router::new, which rejects
    // it with the typed RouterError::InvalidShards (exit code 2, no panic).
    let (results, stats) = if shards == 1 {
        let engine = Engine::new(g.clone(), cfg);
        let report = engine.run_batch(&queries);
        (report.results, report.stats)
    } else {
        let router = Router::new(g.clone(), cfg, shards, &partitioner)?;
        let pstats = router.partition_stats();
        let report = router.run_batch(&queries);
        println!(
            "router: {shards} shards ({} partitioner), {:.1}% edges cut, balance {}..{} nodes",
            router.partitioner(),
            pstats.cut_fraction() * 100.0,
            pstats.balance().1,
            pstats.balance().0,
        );
        for (s, sh) in report.per_shard.iter().enumerate() {
            println!(
                "  shard {s}: {} queries routed, {} visits",
                sh.routed, sh.stats.total_visits
            );
        }
        (report.results, report.stats)
    };
    let wall = start.elapsed();

    if verbose {
        for (i, r) in results.iter().enumerate() {
            println!(
                "[{i:>4}] {}{}",
                r.answer,
                if r.cached { " [cached]" } else { "" }
            );
        }
    }
    println!(
        "batch: {} queries in {wall:.2?} ({:.0} q/s)",
        queries.len(),
        queries.len() as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!("{stats}");
    let mut budget_violations = 0usize;
    for r in &results {
        if let Answer::Pattern { gq_size, .. } = &r.answer {
            if *gq_size > max_units {
                budget_violations += 1;
            }
        }
    }
    if budget_violations == 0 {
        println!("per-query budgets respected: every |G_Q| <= {max_units} units");
    } else {
        return Err(format!(
            "{budget_violations} answers exceeded the per-query budget of {max_units} units"
        )
        .into());
    }
    if let Some(path) = answers {
        let aa: Vec<Answer> = results.iter().map(|r| r.answer.clone()).collect();
        write_answers_atomic(&path, &aa)?;
        println!("wrote {} answers to {path}", aa.len());
    }
    Ok(())
}

/// Serialize answers to `path` atomically: render to memory first (so a
/// wire-format failure writes nothing), then write-temp-then-rename.
fn write_answers_atomic(path: &str, answers: &[Answer]) -> Result<(), CliError> {
    let mut buf = Vec::new();
    write_answer_file(&mut buf, answers)?;
    gio::atomic_write(std::path::Path::new(path), |w| w.write_all(&buf))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(())
}

fn cmd_ingest(args: &[String]) -> Result<(), CliError> {
    let (mut out, mut compact, mut durable, mut inject) = (None, None, None, None);
    let pos = parse_flags(
        args,
        &mut [
            ("out", &mut out),
            ("compact", &mut compact),
            ("durable", &mut durable),
            ("inject", &mut inject),
        ],
    )?;
    let [graph_path, delta_path] = pos.as_slice() else {
        return Err("usage: ingest GRAPH DELTAFILE [--out FILE] [--compact 1] \
                    [--durable DIR] [--inject POINT[:N]]"
            .into());
    };
    if inject.is_some() && durable.is_none() {
        return Err("--inject requires --durable (it targets the durability IO path)".into());
    }
    let text = std::fs::read_to_string(delta_path)
        .map_err(|e| format!("cannot open {delta_path}: {e}"))?;
    let file = parse_delta_file(&text).map_err(|e| CliError::Parse {
        path: (*delta_path).to_owned(),
        source: e,
    })?;
    if file.headerless {
        eprintln!("warning: {delta_path} has no #rbq-deltas header; reading it as v1");
    }

    if let Some(dir) = durable {
        return ingest_durable(
            graph_path,
            &file.batch,
            &dir,
            inject.as_deref(),
            out.as_deref(),
        );
    }

    let g = load_graph(graph_path)?;
    let (g2, report) = g.apply_delta(&file.batch)?;
    let g2 = if compact.is_some_and(|v| v != "0") && g2.is_overlaid() {
        g2.compact()
    } else {
        g2
    };
    print_ingest_report(file.batch.len(), &report, &g2);
    if let Some(out) = out {
        gio::atomic_write(std::path::Path::new(&out), |w| gio::write_graph(&g2, w))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote updated graph to {out}");
    }
    Ok(())
}

/// Shared tail of `ingest`: the op/graph summary lines.
fn print_ingest_report(ops: usize, report: &rbq::rbq_graph::DeltaReport, g: &Graph) {
    println!(
        "applied {} ops: +{} nodes, +{} edges, -{} edges; touched labels: {}",
        ops,
        report.nodes_added,
        report.edges_added,
        report.edges_removed,
        if report.touched_labels.is_empty() {
            "-".to_owned()
        } else {
            report.touched_labels.join(",")
        }
    );
    println!(
        "graph now {} nodes, {} edges{}",
        g.node_count(),
        g.edge_count(),
        if report.compacted {
            " (auto-compacted)"
        } else if g.is_overlaid() {
            " (overlaid)"
        } else {
            ""
        }
    );
}

/// `ingest --durable DIR`: apply the batch through an [`Engine`] whose
/// durability hooks WAL-log it (fsync before the epoch swap). A fresh DIR
/// is seeded with a snapshot of GRAPH; a DIR that already holds durable
/// state is recovered first and GRAPH is ignored, so repeated durable
/// ingests into the same directory accumulate.
fn ingest_durable(
    graph_path: &str,
    batch: &rbq::rbq_graph::DeltaBatch,
    dir: &str,
    inject: Option<&str>,
    out: Option<&str>,
) -> Result<(), CliError> {
    // Arm the injected fault before any durability IO so the first firing
    // of the chosen point panics — simulating a crash mid-ingest. The
    // panic unwinds out of main: a non-zero exit with the on-disk state
    // exactly as the crash left it, which is what `rbq recover` pins.
    #[cfg(feature = "fault-injection")]
    let _armed = match inject {
        Some(spec) => {
            use rbq::rbq_graph::faultpoint::{arm, FaultAction, FaultPlan, REGISTRY};
            let (name, nth) = match spec.split_once(':') {
                Some((p, n)) => (
                    p,
                    n.parse::<u64>()
                        .map_err(|_| format!("bad --inject count in {spec:?}"))?,
                ),
                // N is the 0-based hit to trigger on, matching
                // FaultPlan::on_nth; default: the first firing.
                None => (spec, 0),
            };
            let point = REGISTRY
                .iter()
                .copied()
                .find(|&r| r == name)
                .ok_or_else(|| format!("unknown faultpoint {name:?}; see faultpoint::REGISTRY"))?;
            eprintln!("fault injection armed: panic at {point}, firing #{nth}");
            Some(arm(FaultPlan::new().on_nth(point, nth, FaultAction::Panic)))
        }
        None => None,
    };
    #[cfg(not(feature = "fault-injection"))]
    if let Some(spec) = inject {
        eprintln!(
            "warning: --inject {spec} ignored (binary built without the fault-injection feature)"
        );
    }

    let dir_path = std::path::Path::new(dir);
    let cfg = EngineConfig::builder().build()?;
    let engine = if dir_path
        .join(rbq::rbq_graph::snapshot::SNAPSHOT_FILE)
        .exists()
    {
        eprintln!("note: {dir} already holds durable state; {graph_path} is ignored");
        let (engine, rec) = Engine::recover(dir_path, cfg)?;
        println!(
            "recovered {} nodes, {} edges (snapshot seq {}, {} batches replayed)",
            rec.nodes, rec.edges, rec.snapshot_seq, rec.replayed
        );
        engine
    } else {
        let g = Arc::new(load_graph(graph_path)?);
        let engine = Engine::new(g, cfg);
        engine.enable_durability(&DurabilityConfig::new(dir_path))?;
        engine
    };
    let report = engine.apply_deltas(batch)?;
    let g2 = engine.graph();
    print_ingest_report(batch.len(), &report, &g2);
    println!("durable state in {dir}");
    if let Some(out) = out {
        gio::atomic_write(std::path::Path::new(out), |w| gio::write_graph(&g2, w))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote updated graph to {out}");
    }
    Ok(())
}

fn cmd_snapshot(args: &[String]) -> Result<(), CliError> {
    let mut out = None;
    let pos = parse_flags(args, &mut [("out", &mut out)])?;
    let [graph_path] = pos.as_slice() else {
        return Err("usage: snapshot GRAPH --out DIR".into());
    };
    let Some(out) = out else {
        return Err("snapshot: --out DIR is required".into());
    };
    let g = load_graph(graph_path)?;
    Durability::create(std::path::Path::new(&out), &g)?;
    println!(
        "snapshot: {} nodes, {} edges -> {out} (seq 0, fresh WAL)",
        g.node_count(),
        g.edge_count()
    );
    Ok(())
}

fn cmd_recover(args: &[String]) -> Result<(), CliError> {
    let (mut queries, mut answers) = (None, None);
    let pos = parse_flags(
        args,
        &mut [("queries", &mut queries), ("answers", &mut answers)],
    )?;
    let [dir] = pos.as_slice() else {
        return Err("usage: recover DIR [--queries FILE] [--answers FILE]".into());
    };
    if answers.is_some() && queries.is_none() {
        return Err("recover: --answers requires --queries".into());
    }
    let cfg = EngineConfig::builder().build()?;
    let (engine, report) = Engine::recover(std::path::Path::new(dir), cfg)?;
    println!(
        "recovered {} nodes, {} edges from {dir} \
         (snapshot seq {}, {} batches replayed, {} skipped, last seq {})",
        report.nodes,
        report.edges,
        report.snapshot_seq,
        report.replayed,
        report.skipped,
        report.last_seq
    );
    if report.torn_tail {
        eprintln!("warning: WAL ended mid-record; torn tail truncated");
    }
    if report.quarantined > 0 {
        eprintln!(
            "warning: {} corrupt WAL record(s) quarantined; serving the valid prefix",
            report.quarantined
        );
    }
    if let Some(qpath) = queries {
        let qs = load_queries(&qpath)?;
        let batch = engine.run_batch(&qs);
        println!("batch: {} queries", qs.len());
        println!("{}", batch.stats);
        if let Some(apath) = answers {
            let aa: Vec<Answer> = batch.results.iter().map(|r| r.answer.clone()).collect();
            write_answers_atomic(&apath, &aa)?;
            println!("wrote {} answers to {apath}", aa.len());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufWriter;

    #[test]
    fn parse_spec_ok() {
        let s = parse_spec("4,8").unwrap();
        assert_eq!((s.nodes, s.edges), (4, 8));
        let s = parse_spec(" 6 , 12 ").unwrap();
        assert_eq!((s.nodes, s.edges), (6, 12));
    }

    #[test]
    fn parse_spec_errors() {
        assert!(parse_spec("4").is_err());
        assert!(parse_spec("a,b").is_err());
        assert!(parse_spec("0,3").is_err());
    }

    #[test]
    fn parse_flags_extracts_pairs() {
        let args: Vec<String> = ["--alpha", "0.5", "file.txt", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (mut alpha, mut seed) = (None, None);
        let pos = parse_flags(&args, &mut [("alpha", &mut alpha), ("seed", &mut seed)]).unwrap();
        assert_eq!(alpha.as_deref(), Some("0.5"));
        assert_eq!(seed.as_deref(), Some("9"));
        assert_eq!(pos, vec!["file.txt"]);
    }

    #[test]
    fn parse_flags_rejects_unknown() {
        let args: Vec<String> = ["--bogus", "1"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args, &mut []).is_err());
    }

    #[test]
    fn parse_flags_missing_value() {
        let args: Vec<String> = ["--alpha"].iter().map(|s| s.to_string()).collect();
        let mut alpha = None;
        assert!(parse_flags(&args, &mut [("alpha", &mut alpha)]).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn parse_alpha_validates_range() {
        assert!(parse_alpha("0.5", "--alpha").is_ok());
        assert!(parse_alpha("1.0", "--alpha").is_ok());
        for bad in ["0", "0.0", "1.5", "-0.1", "nan", "inf", "abc", ""] {
            assert!(parse_alpha(bad, "--alpha").is_err(), "accepted {bad:?}");
        }
    }

    /// A tiny graph file in a per-test temp path (the suite runs tests in
    /// parallel, so names must not collide).
    fn temp_graph(tag: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("rbq_cli_test_{tag}_{}.txt", std::process::id()));
        let g = {
            let mut b = rbq::rbq_graph::GraphBuilder::new();
            let me = b.add_node("ME");
            let a = b.add_node("A");
            let c = b.add_node("B");
            b.add_edge(me, a);
            b.add_edge(a, c);
            b.build()
        };
        let f = File::create(&path).expect("temp file");
        gio::write_graph(&g, BufWriter::new(f)).expect("write graph");
        path.to_string_lossy().into_owned()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn reach_out_of_range_node_id_errors_cleanly() {
        let g = temp_graph("reach_oob");
        let err = run(&argv(&["reach", &g, "0", "999"])).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let err = run(&argv(&["reach", &g, "999", "0"])).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let _ = std::fs::remove_file(&g);
    }

    #[test]
    fn reach_malformed_ids_and_alpha_error_cleanly() {
        let g = temp_graph("reach_bad");
        assert!(run(&argv(&["reach", &g, "zero", "1"])).is_err());
        assert!(run(&argv(&["reach", &g, "0", "1", "--alpha", "2.0"])).is_err());
        assert!(run(&argv(&["reach", &g, "0", "1", "--alpha", "0"])).is_err());
        let _ = std::fs::remove_file(&g);
    }

    #[test]
    fn pattern_malformed_spec_errors_cleanly() {
        let g = temp_graph("pattern_bad");
        assert!(run(&argv(&["pattern", &g, "--spec", "nope"])).is_err());
        assert!(run(&argv(&["pattern", &g, "--spec", "0,3"])).is_err());
        assert!(run(&argv(&["pattern", &g, "--alpha", "-1"])).is_err());
        let _ = std::fs::remove_file(&g);
    }

    #[test]
    fn batch_rejects_malformed_queryfile() {
        let g = temp_graph("batch_bad");
        let qpath = std::env::temp_dir().join(format!("rbq_cli_badq_{}.txt", std::process::id()));
        std::fs::write(&qpath, "r 0 1\nx nonsense\n").expect("write queries");
        let q = qpath.to_string_lossy().into_owned();
        let err = run(&argv(&["batch", &g, &q])).unwrap_err();
        assert!(err.to_string().contains("unknown query kind"), "{err}");
        // The typed chain is preserved under the rendered message.
        assert!(matches!(err, CliError::Parse { .. }), "{err}");
        let _ = std::fs::remove_file(&g);
        let _ = std::fs::remove_file(&qpath);
    }

    #[test]
    fn batch_runs_on_tiny_workload() {
        let g = temp_graph("batch_ok");
        let qpath = std::env::temp_dir().join(format!("rbq_cli_okq_{}.txt", std::process::id()));
        std::fs::write(&qpath, "# two queries\nr 0 2\ns 0 1 ME,A 0-1\n").expect("write queries");
        let q = qpath.to_string_lossy().into_owned();
        run(&argv(&[
            "batch",
            &g,
            &q,
            "--alpha",
            "1.0",
            "--reach-alpha",
            "1.0",
        ]))
        .expect("batch");
        let _ = std::fs::remove_file(&g);
        let _ = std::fs::remove_file(&qpath);
    }

    #[test]
    fn batch_with_zero_timeout_exits_clean_and_times_out_answers() {
        let g = temp_graph("batch_timeout");
        let tmp = std::env::temp_dir();
        let qpath = tmp.join(format!("rbq_cli_toq_{}.txt", std::process::id()));
        let apath = tmp.join(format!("rbq_cli_toa_{}.txt", std::process::id()));
        std::fs::write(&qpath, "#rbq-queries v2\nr 0 2\ns 0 1 ME,A 0-1\n").expect("write queries");
        let (q, a) = (
            qpath.to_string_lossy().into_owned(),
            apath.to_string_lossy().into_owned(),
        );
        run(&argv(&[
            "batch",
            &g,
            &q,
            "--alpha",
            "1.0",
            "--reach-alpha",
            "1.0",
            "--timeout-ms",
            "0",
            "--answers",
            &a,
        ]))
        .expect("timed-out batch still exits clean");
        let text = std::fs::read_to_string(&apath).expect("answers file");
        let parsed = rbq::rbq_engine::wire::parse_answer_file(&text).expect("parse answers");
        assert_eq!(parsed.answers.len(), 2);
        for ans in &parsed.answers {
            assert_eq!(*ans, Answer::TimedOut);
        }
        assert!(run(&argv(&["batch", &g, &q, "--timeout-ms", "oops"])).is_err());
        assert!(run(&argv(&["batch", &g, &q, "--admission", "bogus"])).is_err());
        let _ = std::fs::remove_file(&qpath);
        let _ = std::fs::remove_file(&apath);
    }

    #[test]
    fn batch_runs_sharded_and_writes_versioned_answers() {
        let g = temp_graph("batch_sharded");
        let tmp = std::env::temp_dir();
        let qpath = tmp.join(format!("rbq_cli_shq_{}.txt", std::process::id()));
        let apath = tmp.join(format!("rbq_cli_sha_{}.txt", std::process::id()));
        std::fs::write(
            &qpath,
            "#rbq-queries v1\nr 0 2\nr 2 0\ns 0 1 ME,A 0-1\ni 0 0 ME -\n",
        )
        .expect("write queries");
        let (q, a) = (
            qpath.to_string_lossy().into_owned(),
            apath.to_string_lossy().into_owned(),
        );
        for (shards, partitioner) in [("2", "label"), ("3", "scc")] {
            run(&argv(&[
                "batch",
                &g,
                &q,
                "--alpha",
                "1.0",
                "--reach-alpha",
                "1.0",
                "--shards",
                shards,
                "--partitioner",
                partitioner,
                "--answers",
                &a,
            ]))
            .expect("sharded batch");
            let text = std::fs::read_to_string(&apath).expect("answers file");
            assert!(text.starts_with("#rbq-answers v2"), "{text}");
            let parsed = rbq::rbq_engine::wire::parse_answer_file(&text).expect("parse answers");
            assert_eq!(parsed.answers.len(), 4);
        }
        // Unknown partitioner and zero shards are clean CLI errors.
        assert!(run(&argv(&[
            "batch",
            &g,
            &q,
            "--partitioner",
            "bogus",
            "--shards",
            "2"
        ]))
        .is_err());
        // Zero shards surfaces the typed router error (exit code 2, not a
        // panic), through the full CLI chain.
        let err = run(&argv(&["batch", &g, &q, "--shards", "0"])).unwrap_err();
        assert!(
            matches!(err, CliError::Router(RouterError::InvalidShards)),
            "{err}"
        );
        assert!(err.to_string().contains("shard count"), "{err}");
        let _ = std::fs::remove_file(&g);
        let _ = std::fs::remove_file(&qpath);
        let _ = std::fs::remove_file(&apath);
    }

    #[test]
    fn ingest_applies_and_saves() {
        let g = temp_graph("ingest_ok");
        let tmp = std::env::temp_dir();
        let dpath = tmp.join(format!("rbq_cli_delta_{}.txt", std::process::id()));
        let opath = tmp.join(format!("rbq_cli_ingested_{}.txt", std::process::id()));
        std::fs::write(&dpath, "#rbq-deltas v1\nan C\nae 2 3\nre 0 1\n").expect("write deltas");
        let (d, o) = (
            dpath.to_string_lossy().into_owned(),
            opath.to_string_lossy().into_owned(),
        );
        run(&argv(&["ingest", &g, &d, "--out", &o])).expect("ingest");
        let g2 = load_graph(&o).expect("reload ingested graph");
        // Base was ME->A->B; the delta added C with B->C and removed ME->A.
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g2.edge_count(), 2);
        assert_eq!(g2.node_label_str(NodeId(3)), "C");
        assert!(g2.edge(NodeId(2), NodeId(3)));
        assert!(!g2.edge(NodeId(0), NodeId(1)));
        let _ = std::fs::remove_file(&g);
        let _ = std::fs::remove_file(&dpath);
        let _ = std::fs::remove_file(&opath);
    }

    #[test]
    fn ingest_surfaces_typed_errors() {
        let g = temp_graph("ingest_bad");
        let tmp = std::env::temp_dir();
        let dpath = tmp.join(format!("rbq_cli_baddelta_{}.txt", std::process::id()));
        let d = dpath.to_string_lossy().into_owned();

        // Malformed line: parse error tagged with path and line.
        std::fs::write(&dpath, "#rbq-deltas v1\nae nope 1\n").expect("write deltas");
        let err = run(&argv(&["ingest", &g, &d])).unwrap_err();
        assert!(matches!(err, CliError::Parse { .. }), "{err}");

        // Well-formed but out of range: typed delta apply error.
        std::fs::write(&dpath, "#rbq-deltas v1\nae 0 99\n").expect("write deltas");
        let err = run(&argv(&["ingest", &g, &d])).unwrap_err();
        assert!(
            matches!(err, CliError::Delta(DeltaError::EdgeOutOfRange { .. })),
            "{err}"
        );
        assert!(err.to_string().contains("out of range"), "{err}");
        let _ = std::fs::remove_file(&g);
        let _ = std::fs::remove_file(&dpath);
    }

    #[test]
    fn snapshot_then_recover_serves_the_snapshot() {
        let g = temp_graph("snap_rt");
        let dir = std::env::temp_dir().join(format!("rbq_cli_snapdir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_string_lossy().into_owned();
        run(&argv(&["snapshot", &g, "--out", &d])).expect("snapshot");
        assert!(dir.join(rbq::rbq_graph::snapshot::SNAPSHOT_FILE).exists());
        assert!(dir.join(rbq::rbq_graph::wal::WAL_FILE).exists());
        // A snapshot with an empty WAL recovers to the original graph.
        run(&argv(&["recover", &d])).expect("recover");
        let _ = std::fs::remove_file(&g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_requires_out_flag() {
        let g = temp_graph("snap_noout");
        assert!(run(&argv(&["snapshot", &g])).is_err());
        let _ = std::fs::remove_file(&g);
    }

    #[test]
    fn durable_ingest_recover_roundtrip_accumulates() {
        let g = temp_graph("durable_rt");
        let tmp = std::env::temp_dir();
        let pid = std::process::id();
        let dir = tmp.join(format!("rbq_cli_state_{pid}"));
        let _ = std::fs::remove_dir_all(&dir);
        let dpath = tmp.join(format!("rbq_cli_ddelta_{pid}.txt"));
        let d2path = tmp.join(format!("rbq_cli_ddelta2_{pid}.txt"));
        let qpath = tmp.join(format!("rbq_cli_dq_{pid}.txt"));
        let apath = tmp.join(format!("rbq_cli_da_{pid}.txt"));
        let opath = tmp.join(format!("rbq_cli_dout_{pid}.txt"));
        std::fs::write(&dpath, "#rbq-deltas v2\nan C\nae 2 3\n").expect("write deltas");
        std::fs::write(&d2path, "#rbq-deltas v2\nan D\nae 3 4\n").expect("write deltas");
        std::fs::write(&qpath, "#rbq-queries v2\nr 0 3\n").expect("write queries");
        let (dir_s, d, d2, q, a, o) = (
            dir.to_string_lossy().into_owned(),
            dpath.to_string_lossy().into_owned(),
            d2path.to_string_lossy().into_owned(),
            qpath.to_string_lossy().into_owned(),
            apath.to_string_lossy().into_owned(),
            opath.to_string_lossy().into_owned(),
        );

        // First durable ingest seeds the directory from GRAPH.
        run(&argv(&["ingest", &g, &d, "--durable", &dir_s])).expect("durable ingest");
        // Recover and answer a query against the recovered state.
        run(&argv(&[
            "recover",
            &dir_s,
            "--queries",
            &q,
            "--answers",
            &a,
        ]))
        .expect("recover");
        let text = std::fs::read_to_string(&apath).expect("answers file");
        assert!(text.starts_with("#rbq-answers v2"), "{text}");
        // The default α-budget on a 4-node graph may deny certification;
        // the state differential below (node/edge counts) pins recovery.
        assert!(text.lines().any(|l| l.starts_with("reach ")), "{text}");

        // Second durable ingest into the same directory recovers first and
        // accumulates; GRAPH is ignored.
        run(&argv(&[
            "ingest",
            &g,
            &d2,
            "--durable",
            &dir_s,
            "--out",
            &o,
        ]))
        .expect("second durable ingest");
        let g2 = load_graph(&o).expect("reload");
        assert_eq!(g2.node_count(), 5); // ME A B C D
        assert_eq!(g2.edge_count(), 4);
        assert!(g2.edge(NodeId(3), NodeId(4)));

        let _ = std::fs::remove_file(&g);
        for p in [&dpath, &d2path, &qpath, &apath, &opath] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_inject_requires_durable() {
        let g = temp_graph("inject_nodur");
        let dpath =
            std::env::temp_dir().join(format!("rbq_cli_injdelta_{}.txt", std::process::id()));
        std::fs::write(&dpath, "#rbq-deltas v2\nan C\n").expect("write deltas");
        let d = dpath.to_string_lossy().into_owned();
        let err = run(&argv(&["ingest", &g, &d, "--inject", "wal.fsync"])).unwrap_err();
        assert!(err.to_string().contains("--durable"), "{err}");
        let _ = std::fs::remove_file(&g);
        let _ = std::fs::remove_file(&dpath);
    }

    #[test]
    fn recover_missing_dir_is_typed_error() {
        let dir = std::env::temp_dir().join(format!("rbq_cli_nostate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_string_lossy().into_owned();
        let err = run(&argv(&["recover", &d])).unwrap_err();
        assert!(matches!(err, CliError::Durability(_)), "{err}");
    }

    #[test]
    fn workload_writes_versioned_header() {
        let g = temp_graph("workload_hdr");
        let qpath = std::env::temp_dir().join(format!("rbq_cli_wlq_{}.txt", std::process::id()));
        let q = qpath.to_string_lossy().into_owned();
        run(&argv(&[
            "workload", &g, "--count", "8", "--seed", "3", "--out", &q,
        ]))
        .expect("workload");
        let text = std::fs::read_to_string(&qpath).expect("query file");
        assert!(text.starts_with(QUERY_FILE_HEADER), "{text}");
        // And the batch loader accepts it without a headerless warning.
        let parsed = parse_query_file(&text).expect("parse");
        assert!(!parsed.headerless);
        assert_eq!(parsed.queries.len(), 8);
        let _ = std::fs::remove_file(&g);
        let _ = std::fs::remove_file(&qpath);
    }
}
