//! Query-preserving compression in isolation: how much do SCC condensation
//! and the reachability-equivalence merge shrink different graph shapes?
//!
//! The paper's §5 preprocessing relies on this step (after Fan et al.
//! SIGMOD'12, which reports compression to ~5% for reachability); this
//! example reports ratios for the synthetic families used in the
//! evaluation, plus correctness spot-checks.
//!
//! Run: `cargo run --release --example compression`

use rbq::rbq_graph::{Graph, GraphView};
use rbq::rbq_reach::compress_for_reachability;
use rbq::rbq_workload::{
    layered_dag, reachability_ground_truth, sample_reachability_queries, uniform_random,
    yahoo_like, youtube_like,
};

fn report(name: &str, g: &Graph) {
    let c = compress_for_reachability(g);
    println!(
        "{name:<16} |G| = {:>8} -> |G_c| = {:>8}  ({:.1}%)",
        g.size(),
        c.dag.size(),
        c.ratio(g) * 100.0
    );
    // Spot-check exactness on a sampled query set.
    let queries = sample_reachability_queries(g, 50, 0.5, 5);
    let truth = reachability_ground_truth(g, &queries);
    for (&(s, t), &expect) in queries.iter().zip(&truth) {
        assert_eq!(c.query(s, t), expect, "{name}: compression broke {s}->{t}");
    }
}

fn main() {
    println!("graph            original     compressed   ratio");
    report("uniform(2|V|)", &uniform_random(20_000, 40_000, 15, 1));
    report("youtube-like", &youtube_like(20_000, 1));
    report("yahoo-like", &yahoo_like(20_000, 1));
    report("layered-dag", &layered_dag(40, 500, 0.004, 15, 1));
    println!("\nall sampled queries answered identically on G and G_c");
}
