//! Personalized social search at scale: RBSim / RBSub vs the unbounded
//! baselines on a Youtube-like graph.
//!
//! Generates a power-law graph, extracts a (4,8) pattern around the
//! personalized user, and answers it four ways — `MatchOpt`, `RBSim`,
//! `VF2OPT`, `RBSub` — reporting wall time, data visited, and accuracy,
//! i.e. one cell of the paper's Fig. 8(a)/8(c).
//!
//! Run: `cargo run --release --example social_search`

use rbq::rbq_core::{pattern_accuracy, rbsim, rbsub, NeighborIndex, ResourceBudget};
use rbq::rbq_graph::GraphView;
use rbq::rbq_pattern::{match_opt, vf2_opt, Vf2Config};
use rbq::rbq_workload::{extract_pattern, youtube_like, PatternSpec};
use std::time::Instant;

fn main() {
    let nodes = 20_000;
    let g = youtube_like(nodes, 42);
    println!(
        "youtube-like G: {} nodes, {} edges (|G| = {})",
        g.node_count(),
        g.edge_count(),
        g.size()
    );

    // A (4,8) pattern around the personalized user, as in §6.
    let q = (0..100)
        .find_map(|seed| extract_pattern(&g, PatternSpec::new(4, 8), seed))
        .expect("some seed yields a pattern")
        .resolve(&g)
        .expect("extracted patterns resolve");
    println!(
        "pattern |Q| = (4, {}), d_Q = {}",
        q.pattern().edge_count(),
        q.dq()
    );

    // Offline preprocessing (excluded from per-query budgets).
    let t = Instant::now();
    let idx = NeighborIndex::build(&g);
    println!("offline neighbor index built in {:?}", t.elapsed());

    // Baselines.
    let t = Instant::now();
    let exact_sim = match_opt(&q, &g);
    let t_matchopt = t.elapsed();
    println!("MatchOpt: {} matches in {t_matchopt:?}", exact_sim.len());

    let t = Instant::now();
    let exact_iso = vf2_opt(&q, &g, Vf2Config::default());
    let t_vf2 = t.elapsed();
    println!(
        "VF2OPT:   {} matches in {t_vf2:?}",
        exact_iso.output_matches.len()
    );

    // Resource-bounded, α chosen so α|G| is a few hundred units.
    let alpha = 400.0 / g.size() as f64;
    let budget = ResourceBudget::from_ratio(&g, alpha);
    println!(
        "α = {:.6}% -> budget {} units",
        alpha * 100.0,
        budget.max_units
    );

    let t = Instant::now();
    let sim_ans = rbsim(&g, &idx, &q, &budget);
    let t_rbsim = t.elapsed();
    let sim_acc = pattern_accuracy(&exact_sim, &sim_ans.matches);
    println!(
        "RBSim:  {} matches in {t_rbsim:?} (|G_Q| = {}, visited {}), accuracy {:.1}%  [{}x faster]",
        sim_ans.matches.len(),
        sim_ans.gq_size,
        sim_ans.visits.total(),
        sim_acc.f1 * 100.0,
        (t_matchopt.as_secs_f64() / t_rbsim.as_secs_f64().max(1e-9)).round()
    );

    let t = Instant::now();
    let sub_ans = rbsub(&g, &idx, &q, &budget);
    let t_rbsub = t.elapsed();
    let sub_acc = pattern_accuracy(&exact_iso.output_matches, &sub_ans.matches);
    println!(
        "RBSub:  {} matches in {t_rbsub:?} (|G_Q| = {}, visited {}), accuracy {:.1}%  [{}x faster]",
        sub_ans.matches.len(),
        sub_ans.gq_size,
        sub_ans.visits.total(),
        sub_acc.f1 * 100.0,
        (t_vf2.as_secs_f64() / t_rbsub.as_secs_f64().max(1e-9)).round()
    );
}
