//! Patterns **without** a personalized node — the paper's first open topic
//! (§7), implemented as `RBSimAny`.
//!
//! A global analyst asks: "find cycling lovers followed by members of both
//! a cycling club and a hiking group — for *any* user, not just Michael."
//! Without a unique anchor, RBSimAny seeds the dynamic reduction at the
//! most selective query label's best candidates and splits the budget
//! across seeds.
//!
//! Run: `cargo run --release --example anonymous_pattern`

use rbq::rbq_core::{rbsim_any, AnyConfig, NeighborIndex, ResourceBudget};
use rbq::rbq_graph::GraphBuilder;
use rbq::rbq_pattern::{strongsim::strong_simulation_anonymous, PatternBuilder};

fn main() {
    // Several user neighborhoods, only some satisfying the pattern.
    let mut b = GraphBuilder::new();
    let mut complete = 0usize;
    for i in 0..40 {
        let user = b.add_node("User");
        let cc = b.add_node("CC");
        let hg = b.add_node("HG");
        b.add_edge(user, cc);
        b.add_edge(user, hg);
        if i % 3 == 0 {
            // Complete instance: a CL known by both groups.
            let cl = b.add_node("CL");
            b.add_edge(cc, cl);
            b.add_edge(hg, cl);
            complete += 1;
        } else if i % 3 == 1 {
            // Near miss: CL known only by the club.
            let cl = b.add_node("CL");
            b.add_edge(cc, cl);
        }
    }
    let g = b.build();
    println!(
        "G: {} nodes, {} edges; {complete} complete instances",
        g.node_count(),
        g.edge_count()
    );

    // The Fig. 1 pattern with an anonymous User in place of Michael.
    let mut pb = PatternBuilder::new();
    let user = pb.add_node("User");
    let cc = pb.add_node("CC");
    let hg = pb.add_node("HG");
    let cl = pb.add_node("CL");
    pb.add_edge(user, cc);
    pb.add_edge(user, hg);
    pb.add_edge(cc, cl);
    pb.add_edge(hg, cl);
    pb.personalized(user).output(cl);
    let pattern = pb.build();

    let idx = NeighborIndex::build(&g);

    // Exact anonymous answer (union over all anchors) as ground truth.
    let exact = strong_simulation_anonymous(&pattern, &g);
    println!("exact anonymous answer: {} matches", exact.len());

    for (alpha, seeds) in [(0.2, 8), (0.5, 16), (1.0, 64)] {
        let budget = ResourceBudget::from_ratio(&g, alpha);
        let ans = rbsim_any(&g, &idx, &pattern, &budget, AnyConfig { max_seeds: seeds });
        let sound = ans.matches.iter().all(|v| exact.contains(v));
        println!(
            "alpha={alpha:<4} seeds={:<2} -> {} matches (seed label {:?}, |G_Q| total {}), sound={sound}",
            ans.seeds.len(),
            ans.matches.len(),
            pattern.label_str(ans.seed_query_node),
            ans.total_gq_size,
        );
        assert!(sound, "RBSimAny must never return spurious matches");
    }
    println!("at full budget the anonymous answer is recovered exactly");
}
