//! Sharded serving: one mixed workload through a single engine and
//! through routers at increasing shard counts, verifying the tentpole
//! invariant `Router(k) ≡ Engine(1)` on the way — the answers (and every
//! stat that isn't the schedule-dependent cache flag) are byte-identical
//! at any shard count.
//!
//! Run: `cargo run --release --example sharded_batch`

use rbq::rbq_engine::{Engine, EngineConfig};
use rbq::rbq_graph::GraphView;
use rbq::rbq_router::{Router, SccPartitioner};
use rbq::rbq_workload::{sample_mixed_workload, youtube_like, MixedWorkloadSpec};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let g = Arc::new(youtube_like(50_000, 42));
    println!(
        "youtube-like G: {} nodes, {} edges (|G| = {})",
        g.node_count(),
        g.edge_count(),
        g.size()
    );

    let queries = sample_mixed_workload(
        &g,
        &MixedWorkloadSpec {
            count: 300,
            repeat_fraction: 0.3,
            ..Default::default()
        },
        7,
    );
    println!("workload: {} mixed queries\n", queries.len());

    // Validated config via the builder — α and thread counts are checked
    // at build() instead of exploding somewhere inside the engine.
    let cfg = EngineConfig::builder()
        .reach_alpha(0.05)
        .aggregate_visit_budget(Some(500_000))
        .build()
        .expect("valid config");

    // The unsharded baseline.
    let engine = Engine::new(g.clone(), cfg.clone());
    let t = Instant::now();
    let baseline = engine.run_batch(&queries);
    println!("engine(1):  {:>10.2?}  {}", t.elapsed(), baseline.stats);

    for shards in [2usize, 4] {
        let router = Router::new(g.clone(), cfg.clone(), shards, &SccPartitioner)
            .expect("router construction");
        let p = router.partition_stats();
        let (bmax, bmin) = p.balance();
        println!(
            "\nrouter({shards}) [scc]: {:.1}% edges cut, balance {bmin}..{bmax} nodes",
            p.cut_fraction() * 100.0
        );
        let t = Instant::now();
        let report = router.run_batch(&queries);
        println!("router({shards}): {:>10.2?}  {}", t.elapsed(), report.stats);
        for (i, shard) in report.per_shard.iter().enumerate() {
            println!(
                "  shard {i}: {:>4} routed, {:>8} visits",
                shard.routed, shard.stats.total_visits
            );
        }

        // The invariant, checked end to end (cached-ness is
        // schedule-dependent and excluded, as everywhere).
        assert_eq!(baseline.results.len(), report.results.len());
        for (a, b) in baseline.results.iter().zip(&report.results) {
            assert_eq!(a.answer, b.answer);
            assert_eq!(a.visits, b.visits);
        }
        println!("  ✓ all {} answers identical to engine(1)", queries.len());
    }
}
