//! Quickstart: answer the paper's Fig. 1 query within a 16-unit budget.
//!
//! Builds the running-example social graph (Michael, a hiking group, a
//! cycling club, cycling lovers), poses the pattern "cycling lovers known
//! by both my cycling-club friends and my hiking friends", and answers it
//! with RBSim while visiting only a bounded fraction of the graph —
//! reproducing Example 2's 100%-accurate answer from 16 units.
//!
//! Run: `cargo run --example quickstart`

use rbq::rbq_core::{pattern_accuracy, rbsim, NeighborIndex, ResourceBudget};
use rbq::rbq_graph::{GraphBuilder, GraphView};
use rbq::rbq_pattern::{match_opt, PatternBuilder};

fn main() {
    // ---- The data graph G (Fig. 1), at Example 2's scale. ----
    let mut b = GraphBuilder::new();
    let michael = b.add_node("Michael");
    let mut hgs = Vec::new();
    for _ in 0..96 {
        hgs.push(b.add_node("HG")); // hiking group
    }
    let cc1 = b.add_node("CC"); // LA city cycling club
    let cc2 = b.add_node("CC");
    let cc3 = b.add_node("CC");
    let mut cls = Vec::new();
    for _ in 0..900 {
        cls.push(b.add_node("CL")); // cycling lovers
    }
    for &h in &hgs {
        b.add_edge(michael, h);
    }
    b.add_edge(michael, cc1);
    b.add_edge(michael, cc3);
    b.add_edge(cc2, cls[0]);
    let n = cls.len();
    let (cln_1, cln) = (cls[n - 2], cls[n - 1]);
    b.add_edge(cc1, cln_1);
    b.add_edge(cc1, cln);
    b.add_edge(cc3, cln);
    let hgm = hgs[hgs.len() - 1];
    b.add_edge(hgm, cln_1);
    b.add_edge(hgm, cln);
    let g = b.build();
    println!(
        "G: {} nodes, {} edges (|G| = {})",
        g.node_count(),
        g.edge_count(),
        g.size()
    );

    // ---- The pattern Q: Michael -> CC -> CL <- HG <- Michael. ----
    let mut pb = PatternBuilder::new();
    let q_me = pb.add_node("Michael");
    let q_cc = pb.add_node("CC");
    let q_hg = pb.add_node("HG");
    let q_cl = pb.add_node("CL");
    pb.add_edge(q_me, q_cc);
    pb.add_edge(q_me, q_hg);
    pb.add_edge(q_cc, q_cl);
    pb.add_edge(q_hg, q_cl);
    pb.personalized(q_me).output(q_cl);
    let q = pb.build().resolve(&g).expect("pattern resolves against G");

    // ---- Offline, once-for-all: the neighbor index (S_l + degrees). ----
    let idx = NeighborIndex::build(&g);

    // ---- Resource-bounded answering: 16 units, like Example 2. ----
    let budget = ResourceBudget::from_units(&g, 16);
    let answer = rbsim(&g, &idx, &q, &budget);
    println!(
        "RBSim: |G_Q| = {} (budget 16), visited {} data units",
        answer.gq_size,
        answer.visits.total()
    );
    for &v in &answer.matches {
        println!("  match: node {} ({})", v, g.node_label_str(v));
    }

    // ---- Compare with the exact answer. ----
    let exact = match_opt(&q, &g);
    let acc = pattern_accuracy(&exact, &answer.matches);
    println!(
        "exact answer has {} matches; accuracy = {:.0}%",
        exact.len(),
        acc.f1 * 100.0
    );
    assert_eq!(answer.matches, exact, "Example 2 reaches 100% accuracy");
    println!("Example 2 reproduced: exact answer from a 16-unit G_Q.");
}
