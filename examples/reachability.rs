//! Non-localized queries: resource-bounded reachability vs BFS / BFSOPT /
//! LM on a Yahoo-like web graph — one column of the paper's Fig. 8(k)-(n).
//!
//! Run: `cargo run --release --example reachability`

use rbq::rbq_core::reachability_accuracy;
use rbq::rbq_graph::GraphView;
use rbq::rbq_reach::{BfsOptIndex, HierarchicalIndex, LandmarkVectors};
use rbq::rbq_workload::{reachability_ground_truth, sample_reachability_queries, yahoo_like};
use std::time::Instant;

fn main() {
    let g = yahoo_like(30_000, 7);
    println!(
        "yahoo-like G: {} nodes, {} edges (|G| = {})",
        g.node_count(),
        g.edge_count(),
        g.size()
    );

    // 100 queries as in §6 Exp-2, half guaranteed reachable.
    let queries = sample_reachability_queries(&g, 100, 0.5, 99);
    let truth = reachability_ground_truth(&g, &queries);

    // ---- Offline structures. ----
    let t = Instant::now();
    let alpha = 0.01; // α|G| a few thousand units
    let hier = HierarchicalIndex::build(&g, alpha);
    println!(
        "RBIndex built in {:?}: {} landmarks, {} levels, index size {} (bound {})",
        t.elapsed(),
        hier.num_landmarks(),
        hier.levels(),
        hier.index_size(),
        hier.visit_cap()
    );

    let t = Instant::now();
    let bfsopt = BfsOptIndex::build(&g);
    println!(
        "BFSOPT compression in {:?}: {} -> {} nodes ({:.1}% of |G|)",
        t.elapsed(),
        g.node_count(),
        bfsopt.compressed.dag.node_count(),
        bfsopt.compressed.ratio(&g) * 100.0
    );

    let t = Instant::now();
    let lm = LandmarkVectors::build(&g, 7);
    println!(
        "LM vectors built in {:?}: {} landmarks",
        t.elapsed(),
        lm.landmarks.len()
    );

    // ---- Per-algorithm query runs. ----
    let t = Instant::now();
    let bfs_ans: Vec<bool> = queries
        .iter()
        .map(|&(s, t)| rbq::rbq_reach::bfs_query(&g, s, t).0)
        .collect();
    let t_bfs = t.elapsed();

    let t = Instant::now();
    let opt_ans: Vec<bool> = queries.iter().map(|&(s, t)| bfsopt.query(s, t)).collect();
    let t_opt = t.elapsed();

    let t = Instant::now();
    let lm_ans: Vec<bool> = queries.iter().map(|&(s, t)| lm.query(s, t)).collect();
    let t_lm = t.elapsed();

    let t = Instant::now();
    let mut max_visits = 0usize;
    let rb_ans: Vec<bool> = queries
        .iter()
        .map(|&(s, t)| {
            let a = hier.query(s, t);
            max_visits = max_visits.max(a.visits);
            a.reachable
        })
        .collect();
    let t_rb = t.elapsed();

    println!("\nalgorithm  total-time   accuracy");
    for (name, ans, tt) in [
        ("BFS", &bfs_ans, t_bfs),
        ("BFSOPT", &opt_ans, t_opt),
        ("LM", &lm_ans, t_lm),
        ("RBReach", &rb_ans, t_rb),
    ] {
        let acc = reachability_accuracy(&truth, ans);
        println!("{name:<9} {tt:>10.2?}   {:.1}%", acc.f1 * 100.0);
    }
    println!(
        "\nRBReach max visits per query: {max_visits} (cap {}); no false positives by construction",
        hier.visit_cap()
    );
    // Sanity: Theorem 4(c).
    for (i, (&got, &exact)) in rb_ans.iter().zip(&truth).enumerate() {
        assert!(!got || exact, "false positive at query {i}");
    }
}
