//! The resource/accuracy trade-off curve — the paper's second open topic
//! (§7): what accuracy ratio `η` does a given `α` buy?
//!
//! Sweeps α over a grid on a Yahoo-like graph and prints the empirical η
//! profile (min / p10 / mean accuracy and the fraction of exactly answered
//! queries), then inverts it: the smallest α reaching η = 0.9 and 1.0.
//!
//! Run: `cargo run --release --example eta_curve`

use rbq::rbq_core::{eta_profile, min_alpha_for_eta, NeighborIndex, ProfiledAlgorithm};
use rbq::rbq_graph::GraphView;
use rbq::rbq_workload::{extract_pattern, yahoo_like, PatternSpec};

fn main() {
    let g = yahoo_like(15_000, 21);
    println!(
        "yahoo-like G: {} nodes, {} edges (|G| = {})",
        g.node_count(),
        g.edge_count(),
        g.size()
    );
    let idx = NeighborIndex::build(&g);
    let queries: Vec<_> = (0..500u64)
        .filter_map(|s| extract_pattern(&g, PatternSpec::new(4, 8), s))
        .filter_map(|p| p.resolve(&g).ok())
        .take(8)
        .collect();
    println!("workload: {} pattern queries (4,8)", queries.len());

    let alphas: Vec<f64> = [1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1].to_vec();
    let profile = eta_profile(&g, &idx, &queries, &alphas, ProfiledAlgorithm::RbSim);

    println!(
        "\n{:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "alpha", "budget", "eta_min", "p10", "mean", "exact%"
    );
    for p in &profile {
        println!(
            "{:>9.5} {:>8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.0}%",
            p.alpha,
            p.budget_units,
            p.eta_min * 100.0,
            p.p10 * 100.0,
            p.mean * 100.0,
            p.exact_fraction * 100.0
        );
    }

    for eta in [0.9, 1.0] {
        match min_alpha_for_eta(&profile, eta) {
            Some(a) => println!("smallest alpha with eta >= {eta}: {a}"),
            None => println!("eta >= {eta} not reached on this grid"),
        }
    }
}
