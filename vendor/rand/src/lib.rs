#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the API subset the `rbq` workspace uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, [`seq::SliceRandom`] (Fisher–Yates
//! shuffle and choosing), and [`distributions::Uniform`].
//!
//! Streams are deterministic for a given seed but do **not** bit-match
//! upstream `rand` (which uses Lemire rejection sampling in `gen_range`);
//! every consumer in this workspace only relies on seeded determinism.

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with
    /// SplitMix64. (Upstream `rand_core` expands with a PCG32 stream, so
    /// seeds do not produce the same key material as the real crate.)
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Integer/float types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening multiply maps a uniform u64 onto [0, span); the
                // bias is < span/2^64, negligible for this workspace's spans.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_in(lo as f64, hi as f64, rng) as f32
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                // Span computed in u128 so `lo..=MAX` cannot overflow.
                let span = (hi as u128 - lo as u128) + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + off
            }
        }
    )*};
}

impl_inclusive_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (e.g. `rng.gen_range(0..n)`).
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        T: SampleUniform,
        Rge: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers: shuffling and choosing from slices.

    use super::{Rng, RngCore};

    /// Shuffle/choose extensions on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod distributions {
    //! Distribution types: currently only [`Uniform`].

    use super::{RngCore, SampleUniform};

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open range `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Creates the distribution over `[lo, hi)`. Panics if `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new called with empty range");
            Uniform { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_in(self.lo, self.hi, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn inclusive_range_to_max_does_not_overflow() {
        let mut rng = Counter(3);
        for _ in 0..100 {
            let _: u32 = rng.gen_range(0..=u32::MAX);
            let _: usize = rng.gen_range(usize::MAX - 1..=usize::MAX);
            let x: u8 = rng.gen_range(250..=u8::MAX);
            assert!(x >= 250);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_distribution_bounds() {
        let mut rng = Counter(9);
        let dist = Uniform::new(10u32, 20u32);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((10..20).contains(&x));
        }
    }
}
