#![warn(missing_docs)]
//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements [`ChaCha8Rng`]: a deterministic, seedable random number
//! generator driven by the 8-round ChaCha block function, wired to the
//! vendored [`rand`] traits. Deterministic for a given seed; word order is
//! not guaranteed to bit-match upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha-based RNG with 8 rounds — fast, seedable, deterministic.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// ChaCha state: constants, 8 key words (the seed), counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// The current output block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word index in `block`; `BLOCK_WORDS` forces a refill.
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of (column, diagonal).
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(w.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in state words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // counter (12, 13) and nonce (14, 15) start at zero.
        ChaCha8Rng {
            state,
            block: [0u32; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn words_look_uniformish() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..256 {
            ones += rng.next_u64().count_ones();
        }
        // 256 * 64 = 16384 bits; expect ~8192 ones.
        assert!((7500..8900).contains(&ones), "bit balance off: {ones}");
    }
}
