#![warn(missing_docs)]
//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of criterion's API the `rbq` benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock timing loop instead of criterion's statistical machinery.
//!
//! Behavior:
//! * `cargo bench` runs each benchmark `sample_size` times (after one warm-up
//!   iteration) and prints the mean time per iteration;
//! * a `--test` argument (as passed by `cargo test` to bench targets) runs
//!   each benchmark exactly once, as a smoke check;
//! * substring filter arguments select which benchmarks run, like upstream.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; create one per bench binary.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments: `--test` (smoke mode), `--bench`
    /// (ignored), `--save-baseline <name>` / other flag values (ignored), and
    /// a positional substring filter.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" | "--output-format" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one("", name, sample_size, f);
        self
    }

    fn run_one<F>(&self, group: &str, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            iterations: if self.test_mode {
                1
            } else {
                sample_size as u64
            },
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {full} ... ok");
        } else {
            let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
            println!("{full}: {per_iter} ns/iter (n = {})", bencher.iterations);
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `id` (a string or [`BenchmarkId`]).
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let id = id.into_benchmark_id();
        self.criterion.run_one(&self.name, &id.full, sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (Upstream finalizes reports here; a no-op for us.)
    pub fn finish(self) {}
}

/// An identifier of the form `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so bench methods accept `&str` too.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Times closures; handed to every benchmark function.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing the batch.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One warm-up iteration outside the timed region.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export of [`std::hint::black_box`], mirroring upstream's helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_loop() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(ran, 4);
    }
}
