#![warn(missing_docs)]
//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API the `rbq` workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! range and tuple strategies, [`collection::vec`], [`Just`],
//! `prop::bool::ANY`, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Inputs are generated from a seeded ChaCha8 stream, so failures are
//! reproducible run-to-run. Unlike upstream there is **no shrinking**: a
//! failing case reports the case number and message as-is.

use rand_chacha::ChaCha8Rng;

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The input was rejected (e.g. by `prop_filter`).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result type of a generated property-test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for producing random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value from the RNG stream.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying with fresh inputs.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut ChaCha8Rng) -> S::Value {
        // Retries within the current case; a filter with a very low pass
        // rate should use `prop_assume!` in the test body instead, which
        // rejects the whole case and retries with a fresh seed.
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

pub mod collection {
    //! Strategies for collections.

    use super::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    /// A length specification for [`vec`]: an exact `usize` or a
    /// half-open range of lengths.
    pub trait IntoSizeRange {
        /// Converts into a half-open length range.
        fn into_size_range(self) -> std::ops::Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self
        }
    }

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with a length matching `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for booleans.

    use super::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    /// The strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut ChaCha8Rng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod prop {
    //! Namespace alias mirroring upstream's `prop` module.

    pub use crate::bool;
    pub use crate::collection;
}

pub mod test_runner {
    //! The driver loop behind the [`proptest!`] macro.

    use super::{ProptestConfig, TestCaseError, TestCaseResult};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Runs `body` against `config.cases` seeded random inputs, panicking on
    /// the first failure (no shrinking). `name` seeds the RNG, so each
    /// property sees its own deterministic stream.
    pub fn run(
        config: &ProptestConfig,
        name: &str,
        body: impl Fn(&mut ChaCha8Rng) -> TestCaseResult,
    ) {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut rejected = 0u32;
        let mut case = 0u32;
        let mut attempts = 0u32;
        while case < config.cases {
            attempts += 1;
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(attempts as u64));
            match body(&mut rng) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.cases * 16 {
                        panic!("{name}: too many rejected inputs ({rejected})");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: property failed on case {case} (rng seed {}): {msg}",
                        seed.wrapping_add(attempts as u64)
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::bool as prop_bool;
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Rejects the current case (without failing it) unless `cond` holds; the
/// runner draws a replacement case with a fresh seed. Use for conditions
/// too selective for `prop_filter`'s in-case retries.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over seeded random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                    let body_result: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    body_result
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 2usize..24, x in 0u8..4) {
            prop_assert!((2..24).contains(&n));
            prop_assert!(x < 4);
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..8).prop_flat_map(|n| prop::collection::vec(0u32..10, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x < 10, "x = {}", x);
            }
        }

        #[test]
        fn tuples_and_just((a, b) in (Just(7u32), prop::bool::ANY)) {
            prop_assert_eq!(a, 7);
            let _ = b;
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected inputs")]
    fn always_rejecting_property_aborts() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "always_rejects", |_rng| {
            Err(TestCaseError::Reject("never satisfiable".to_string()))
        });
    }
}
