#![warn(missing_docs)]
//! Offline stand-in for the `rustc-hash` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the small API surface the `rbq` workspace uses: the
//! [`FxHasher`] (a fast, non-cryptographic, multiply-based hasher) and the
//! [`FxHashMap`] / [`FxHashSet`] aliases over the std collections.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A [`HashMap`] keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// The [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A speed-oriented, non-cryptographic hasher in the style of the one used
/// inside rustc: each word is folded in with a rotate, xor, and multiply by a
/// large odd constant. Not DoS-resistant; fine for interned ids and `u32`
/// node ids, which is all this workspace hashes.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));

        let mut s: FxHashSet<String> = FxHashSet::default();
        s.insert("x".to_string());
        assert!(s.contains("x"));
        assert!(!s.contains("y"));
    }

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"resource-bounded");
        b.write(b"resource-bounded");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"resource-bounded!");
        assert_ne!(a.finish(), c.finish());
    }
}
