//! PR-5 acceptance: a warm repeat `rbsim` query performs **zero** heap
//! allocations. A counting `#[global_allocator]` wraps the system
//! allocator; after two warm-up calls populate every scratch buffer, the
//! third identical call must not touch the allocator at all — pinning the
//! "steady-state, allocation-free serving" property the scratch threading
//! exists for.
//!
//! This file deliberately holds a single `#[test]`: the allocator counter
//! is process-global, and a concurrently running sibling test would
//! pollute the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rbq::rbq_core::{rbsim_with, NeighborIndex, PatternAnswer, PatternScratch, ResourceBudget};
use rbq::rbq_workload::{extract_pattern, youtube_like, PatternSpec};

/// System allocator with an allocation counter (deallocations are not
/// counted: returning warm buffers is free, acquiring new ones is not).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_rbsim_repeat_query_is_allocation_free() {
    // A graph large enough to exercise the real paths (multi-round search,
    // non-trivial balls) and several distinct queries, so the property is
    // not an artifact of one tiny pattern.
    let g = youtube_like(4_000, 42);
    let idx = NeighborIndex::build(&g);
    let queries: Vec<_> = (0..200u64)
        .filter_map(|s| extract_pattern(&g, PatternSpec::new(4, 8), s))
        .filter_map(|p| p.resolve(&g).ok())
        .take(3)
        .collect();
    assert!(!queries.is_empty(), "no extractable patterns");
    let budget = ResourceBudget::from_units(&g, 300);

    let mut scratch = PatternScratch::new();
    let mut ans = PatternAnswer::default();
    for q in &queries {
        // Two warm-ups: the first grows every buffer, the second catches
        // anything sized lazily on the first pass.
        rbsim_with(&g, &idx, q, &budget, &mut scratch, &mut ans);
        rbsim_with(&g, &idx, q, &budget, &mut scratch, &mut ans);
        let cold_matches = ans.matches.clone();

        let before = ALLOCS.load(Ordering::SeqCst);
        rbsim_with(&g, &idx, q, &budget, &mut scratch, &mut ans);
        let delta = ALLOCS.load(Ordering::SeqCst) - before;

        assert_eq!(ans.matches, cold_matches, "warm answer changed");
        assert_eq!(
            delta, 0,
            "warm rbsim allocated {delta} times on a repeat query"
        );
    }
}
