//! Chaos differential suite: the deterministic fault-injection harness
//! (`rbq_graph::faultpoint`) drives panics, delays, and starvation into
//! the serving path, and the suite pins the robustness contract:
//!
//! * **no abort** — every faulted batch completes with one answer per
//!   query, and the process never dies;
//! * **no poison** — after any fault, the same engine/router serves a
//!   clean batch byte-identical to a never-faulted instance;
//! * **blast-radius** — a non-faulted query's answer is byte-identical to
//!   the fault-free run; only the query (or shard sub-batch) the fault
//!   actually hit may settle `Failed` / `TimedOut`.
//!
//! Runs only under `cargo test --features fault-injection`; without the
//! feature the fault points are inline no-ops and this file is empty.
#![cfg(feature = "fault-injection")]

use proptest::prelude::*;
use rbq::rbq_engine::faultpoint::{arm, FaultAction, FaultPlan};
use rbq::rbq_engine::{Answer, BudgetSpec, Engine, EngineConfig, Query, QueryResult};
use rbq::rbq_router::{Router, SccPartitioner};
use rbq::rbq_workload::{power_law, sample_mixed_workload, MixedWorkloadSpec};
use rbq_graph::Graph;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Fault plans are process-global: every test that arms one must hold
/// this lock for its whole body (arm → run → drop guard).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// All fault points compiled into the serving path, with the query class
/// whose evaluation reaches them.
const KERNEL_POINTS: &[&str] = &["ball.bfs", "dualsim.fixpoint", "reduction.pick", "vf2.step"];

fn fixture() -> (Arc<Graph>, Vec<Query>) {
    static FIX: OnceLock<(Arc<Graph>, Vec<Query>)> = OnceLock::new();
    let (g, qs) = FIX.get_or_init(|| {
        let g = Arc::new(power_law(400, 3, 4, 0xfa017));
        let qs = sample_mixed_workload(
            &g,
            &MixedWorkloadSpec {
                count: 24,
                ..Default::default()
            },
            7,
        );
        (g, qs)
    });
    (g.clone(), qs.clone())
}

fn cfg(threads: usize) -> EngineConfig {
    EngineConfig {
        pattern_budget: BudgetSpec::Ratio(0.2),
        reach_alpha: 0.2,
        threads,
        cache_capacity: 0, // keep every evaluation full-cost and comparable
        ..Default::default()
    }
}

fn answers(results: &[QueryResult]) -> Vec<Answer> {
    results.iter().map(|r| r.answer.clone()).collect()
}

/// The fault-free baseline for the fixture batch (computed once, single
/// threaded — answers are thread-count-invariant anyway).
fn baseline() -> Vec<Answer> {
    static BASE: OnceLock<Vec<Answer>> = OnceLock::new();
    BASE.get_or_init(|| {
        let (g, qs) = fixture();
        answers(&Engine::new(g, cfg(1)).run_batch(&qs).results)
    })
    .clone()
}

/// Assert the robustness contract on a faulted run: every non-faulted
/// answer byte-identical to baseline, faulted ones only TimedOut/Failed.
fn assert_blast_radius(faulted: &[Answer], base: &[Answer], what: &str) {
    assert_eq!(faulted.len(), base.len(), "{what}: batch lost answers");
    for (i, (f, b)) in faulted.iter().zip(base).enumerate() {
        if f != b {
            assert!(
                matches!(f, Answer::TimedOut | Answer::Failed(_)),
                "{what}: query {i} diverged to a non-fault answer: {f:?} vs {b:?}"
            );
        }
    }
}

/// After a fault, the same instance must serve a clean batch exactly.
fn assert_no_poison(engine: &Engine, qs: &[Query], base: &[Answer], what: &str) {
    let clean = answers(&engine.run_batch(qs).results);
    assert_eq!(&clean, base, "{what}: post-fault batch diverged (poison)");
}

#[test]
fn injected_panic_settles_failed_and_spares_the_rest() {
    let _s = serial();
    let (g, qs) = fixture();
    let base = baseline();
    let engine = Engine::new(g, cfg(1));
    let victim = qs.len() as u64 / 2;
    let got = {
        let _plan = arm(FaultPlan::new().on_index("engine.run_one", victim, FaultAction::Panic));
        answers(&engine.run_batch(&qs).results)
    };
    assert!(
        matches!(got[victim as usize], Answer::Failed(_)),
        "victim not Failed: {:?}",
        got[victim as usize]
    );
    for (i, (f, b)) in got.iter().zip(&base).enumerate() {
        if i != victim as usize {
            assert_eq!(f, b, "non-faulted query {i} diverged");
        }
    }
    assert_no_poison(&engine, &qs, &base, "engine.run_one panic");
}

#[test]
fn injected_delay_leaves_answers_byte_identical() {
    let _s = serial();
    let (g, qs) = fixture();
    let base = baseline();
    for threads in [1usize, 4] {
        let engine = Engine::new(g.clone(), cfg(threads));
        let got = {
            let _plan = arm(FaultPlan::new()
                .on_nth(
                    "dualsim.fixpoint",
                    0,
                    FaultAction::Delay(Duration::from_millis(30)),
                )
                .on_nth("ball.bfs", 2, FaultAction::Delay(Duration::from_millis(10))));
            answers(&engine.run_batch(&qs).results)
        };
        assert_eq!(got, base, "delay changed answers at {threads} threads");
    }
}

#[test]
fn injected_starvation_settles_timed_out() {
    let _s = serial();
    let (g, qs) = fixture();
    let base = baseline();
    let engine = Engine::new(g, cfg(1));
    let got = {
        let _plan = arm(FaultPlan::new().on_nth("reduction.pick", 0, FaultAction::Starve));
        answers(&engine.run_batch(&qs).results)
    };
    assert!(
        got.contains(&Answer::TimedOut),
        "starvation never surfaced as TimedOut"
    );
    assert_blast_radius(&got, &base, "reduction.pick starvation");
    assert_no_poison(&engine, &qs, &base, "reduction.pick starvation");
}

#[test]
fn every_kernel_point_is_contained() {
    let _s = serial();
    let (g, qs) = fixture();
    let base = baseline();
    for point in KERNEL_POINTS {
        for action in [FaultAction::Panic, FaultAction::Starve] {
            let engine = Engine::new(g.clone(), cfg(1));
            let got = {
                let _plan = arm(FaultPlan::new().on_nth(point, 1, action));
                answers(&engine.run_batch(&qs).results)
            };
            let what = format!("{point} {action:?}");
            assert_blast_radius(&got, &base, &what);
            assert!(
                got.iter()
                    .filter(|a| matches!(a, Answer::TimedOut | Answer::Failed(_)))
                    .count()
                    <= 1,
                "{what}: more than one query absorbed a single fault"
            );
            assert_no_poison(&engine, &qs, &base, &what);
        }
    }
}

#[test]
fn reach_parallel_worker_loss_is_typed_and_recovered() {
    let _s = serial();
    let (g, _) = fixture();
    let idx = rbq::rbq_reach::HierarchicalIndex::build(&g, 0.2);
    let queries: Vec<_> = (0..64u32)
        .map(|i| {
            (
                rbq_graph::NodeId(i % 400),
                rbq_graph::NodeId((i * 13 + 7) % 400),
            )
        })
        .collect();
    let base = rbq::rbq_reach::batch_query(&idx, &queries, 1);
    {
        let _plan = arm(FaultPlan::new().on_index("reach.parallel", 1, FaultAction::Panic));
        let err = rbq::rbq_reach::try_batch_query(&idx, &queries, 4)
            .expect_err("worker panic must surface typed");
        assert_eq!(err.chunk, 1);
        assert!(err.message.is_some());
    }
    {
        // batch_query falls back to sequential and still answers exactly.
        let _plan = arm(FaultPlan::new().on_index("reach.parallel", 2, FaultAction::Panic));
        let got = rbq::rbq_reach::batch_query(&idx, &queries, 4);
        assert_eq!(got, base, "fallback answers diverged");
    }
}

#[test]
fn router_shard_loss_recovers_on_replica() {
    let _s = serial();
    let (g, qs) = fixture();
    let base = baseline();
    for k in [1usize, 2, 4] {
        for victim in 0..k as u64 {
            let router = Router::new(g.clone(), cfg(2), k, &SccPartitioner).unwrap();
            let got = {
                let _plan =
                    arm(FaultPlan::new().on_index("router.shard", victim, FaultAction::Panic));
                answers(&router.run_batch(&qs).results)
            };
            // The replica retry re-answers the lost sub-batch exactly:
            // full byte-identity, not just blast-radius containment.
            assert_eq!(got, base, "replica retry diverged (k={k}, shard {victim})");
            let clean = answers(&router.run_batch(&qs).results);
            assert_eq!(clean, base, "post-fault router batch diverged (k={k})");
        }
    }
}

#[test]
fn router_double_loss_settles_sub_batch_failed() {
    let _s = serial();
    let (g, qs) = fixture();
    let base = baseline();
    let k = 2usize;
    let router = Router::new(g.clone(), cfg(2), k, &SccPartitioner).unwrap();
    let (got, report_stats) = {
        let _plan = arm(FaultPlan::new()
            .on_index("router.shard", 0, FaultAction::Panic)
            .on_nth("router.shard.retry", 0, FaultAction::Panic));
        let report = router.run_batch(&qs);
        (answers(&report.results), report.stats)
    };
    let failed = got
        .iter()
        .filter(|a| matches!(a, Answer::Failed(_)))
        .count();
    assert!(failed > 0, "double loss produced no Failed answers");
    assert_eq!(report_stats.failed, failed);
    assert_blast_radius(&got, &base, "router double loss");
    // Shard 1's answers (everything not Failed) are untouched, and the
    // router itself is not poisoned.
    let clean = answers(&router.run_batch(&qs).results);
    assert_eq!(clean, base, "post-double-loss router batch diverged");
}

#[test]
fn deadline_settlement_is_deterministic_under_delay_faults() {
    let _s = serial();
    let (g, qs) = fixture();
    // A zero deadline settles every query TimedOut at any thread count,
    // even while delay faults skew worker timing.
    for threads in [1usize, 2, 4] {
        let engine = Engine::new(
            g.clone(),
            EngineConfig {
                batch_timeout: Some(Duration::ZERO),
                ..cfg(threads)
            },
        );
        let got = {
            let _plan = arm(FaultPlan::new().on_nth(
                "dualsim.fixpoint",
                0,
                FaultAction::Delay(Duration::from_millis(20)),
            ));
            answers(&engine.run_batch(&qs).results)
        };
        assert!(
            got.iter().all(|a| *a == Answer::TimedOut),
            "zero-deadline settlement not deterministic at {threads} threads"
        );
    }
}

/// The durable-state IO fault points that fire during a durable ingest
/// (the recovery-side points are exercised in `tests/crash_recovery.rs`).
const IO_INGEST_POINTS: &[&str] = &["wal.append", "wal.fsync"];

/// IO faults on the durability path are contained exactly like kernel
/// faults: a panicked append unwinds out of `apply_deltas` BEFORE the
/// epoch swap, so the pre-crash epoch keeps serving byte-identical
/// answers, no lock stays poisoned, and the failed writer surfaces as a
/// typed error on the next durable apply — never an abort.
#[test]
fn durable_io_faults_keep_the_old_epoch_serving() {
    let _s = serial();
    let (g, qs) = fixture();
    let base = baseline();
    for point in IO_INGEST_POINTS {
        for action in [
            FaultAction::Panic,
            FaultAction::Delay(Duration::from_millis(10)),
        ] {
            let dir = std::env::temp_dir().join(format!(
                "rbq_fi_io_{}_{}",
                point.replace('.', "_"),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let engine = Engine::new(g.clone(), cfg(1));
            engine
                .enable_durability(&rbq::rbq_engine::DurabilityConfig::new(&dir))
                .expect("enable durability");
            let mut batch = rbq_graph::DeltaBatch::new();
            batch.add_node("IO");
            batch.add_edge(rbq_graph::NodeId(0), rbq_graph::NodeId(400));
            let what = format!("{point} {action:?}");
            let panicked = {
                let _plan = arm(FaultPlan::new().on_nth(point, 0, action));
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    engine.apply_deltas(&batch)
                }))
                .is_err()
            };
            match action {
                FaultAction::Panic => {
                    assert!(panicked, "{what}: fault never fired");
                    // The epoch never swapped: the engine serves the
                    // pre-fault graph byte-identically…
                    assert_no_poison(&engine, &qs, &base, &what);
                    // …and the wounded WAL writer reports typed, it does
                    // not panic again.
                    match engine.apply_deltas(&batch) {
                        Err(e) => {
                            let _ = e.to_string();
                        }
                        Ok(_) => panic!("{what}: poisoned WAL writer accepted an append"),
                    }
                }
                _ => {
                    assert!(!panicked, "{what}: delay fault must not unwind");
                    // Delay is harmless: the batch landed, and serving
                    // reflects it (one more node than the fixture).
                    assert_eq!(engine.graph().node_count(), 401, "{what}: batch lost");
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Seeded chaos: arbitrary single-fault plans over every point × action,
/// engine and router, pinning no-abort + blast-radius + no-poison.
fn action_from(idx: usize, delay_ms: u64) -> FaultAction {
    match idx % 3 {
        0 => FaultAction::Panic,
        1 => FaultAction::Starve,
        _ => FaultAction::Delay(Duration::from_millis(delay_ms)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chaos_engine_holds_the_contract(
        point_idx in 0usize..4,
        nth in 0u64..6,
        action_idx in 0usize..3,
        delay_ms in 1u64..20,
    ) {
        let action = action_from(action_idx, delay_ms);
        let _s = serial();
        let (g, qs) = fixture();
        let base = baseline();
        let engine = Engine::new(g, cfg(1));
        let got = {
            let _plan = arm(FaultPlan::new().on_nth(KERNEL_POINTS[point_idx], nth, action));
            answers(&engine.run_batch(&qs).results)
        };
        let what = format!("chaos {} nth={nth} {action:?}", KERNEL_POINTS[point_idx]);
        assert_blast_radius(&got, &base, &what);
        if matches!(action, FaultAction::Delay(_)) {
            prop_assert_eq!(&got, &base, "delay must not change answers");
        }
        assert_no_poison(&engine, &qs, &base, &what);
    }

    #[test]
    fn chaos_router_holds_the_contract(
        k in 1usize..5,
        victim in 0u64..5,
        action_idx in 0usize..3,
        delay_ms in 1u64..20,
    ) {
        let action = action_from(action_idx, delay_ms);
        let _s = serial();
        let (g, qs) = fixture();
        let base = baseline();
        let router = Router::new(g, cfg(2), k, &SccPartitioner).unwrap();
        let got = {
            let _plan = arm(FaultPlan::new().on_index("router.shard", victim % k as u64, action));
            answers(&router.run_batch(&qs).results)
        };
        // Panic → replica retry; Starve → the shard thread unwinds with a
        // CancelPanic before evaluating, which is also a lost worker and
        // also retried; Delay → answers unchanged. In every case the
        // batch must come back byte-identical: a single shard loss is
        // fully recovered.
        prop_assert_eq!(&got, &base, "k={} victim={}", k, victim);
        let clean = answers(&router.run_batch(&qs).results);
        prop_assert_eq!(&clean, &base, "router poisoned");
    }
}
