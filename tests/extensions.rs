//! Integration tests for the §7 future-work extensions: anonymous
//! patterns (RBSimAny), the empirical η profile, and simulation-preserving
//! compression — exercised end-to-end across crates on generated
//! workloads.

use rbq_core::{
    eta_profile, min_alpha_for_eta, rbsim_any, AnyConfig, NeighborIndex, ProfiledAlgorithm,
    ResourceBudget,
};
use rbq_graph::GraphView;
use rbq_pattern::strongsim::strong_simulation_anonymous;
use rbq_pattern::{bisimulation_compress, dual_simulation, PatternBuilder};
use rbq_workload::{extract_pattern, social_groups, yahoo_like, youtube_like, PatternSpec};

#[test]
fn rbsim_any_sound_on_generated_graphs() {
    let g = youtube_like(2_000, 3);
    let idx = NeighborIndex::build(&g);
    // Anonymous pattern over graph labels: L0 -> L1 -> L2 chain.
    let mut pb = PatternBuilder::new();
    let a = pb.add_node("L0");
    let b = pb.add_node("L1");
    let c = pb.add_node("L2");
    pb.add_edge(a, b).add_edge(b, c);
    pb.personalized(a).output(c);
    let p = pb.build();
    let exact = strong_simulation_anonymous(&p, &g);
    for alpha in [0.01, 0.1, 1.0] {
        let budget = ResourceBudget::from_ratio(&g, alpha);
        let ans = rbsim_any(&g, &idx, &p, &budget, AnyConfig { max_seeds: 16 });
        for v in &ans.matches {
            assert!(
                exact.contains(v),
                "spurious anonymous match at alpha={alpha}"
            );
        }
    }
}

#[test]
fn rbsim_any_recall_grows_with_budget() {
    let g = youtube_like(2_000, 7);
    let idx = NeighborIndex::build(&g);
    let mut pb = PatternBuilder::new();
    let a = pb.add_node("L0");
    let b = pb.add_node("L1");
    pb.add_edge(a, b).personalized(a).output(b);
    let p = pb.build();
    let exact = strong_simulation_anonymous(&p, &g);
    if exact.is_empty() {
        return;
    }
    let mut counts = Vec::new();
    for alpha in [0.001, 0.05, 1.0] {
        let budget = ResourceBudget::from_ratio(&g, alpha);
        let ans = rbsim_any(&g, &idx, &p, &budget, AnyConfig { max_seeds: 64 });
        counts.push(ans.matches.len());
    }
    assert!(
        counts[0] <= counts[2],
        "recall should not shrink with budget: {counts:?}"
    );
}

#[test]
fn eta_profile_end_to_end() {
    let g = yahoo_like(4_000, 11);
    let idx = NeighborIndex::build(&g);
    let queries: Vec<_> = (0..300u64)
        .filter_map(|s| extract_pattern(&g, PatternSpec::new(4, 8), s))
        .filter_map(|p| p.resolve(&g).ok())
        .take(4)
        .collect();
    if queries.is_empty() {
        return;
    }
    let profile = eta_profile(
        &g,
        &idx,
        &queries,
        &[0.0002, 0.005, 1.0],
        ProfiledAlgorithm::RbSim,
    );
    // Full budget reaches eta = 1, so some alpha on the grid achieves it.
    assert_eq!(profile.last().unwrap().eta_min, 1.0);
    assert!(min_alpha_for_eta(&profile, 1.0).is_some());
    // Budgets grow with alpha.
    for w in profile.windows(2) {
        assert!(w[0].budget_units <= w[1].budget_units);
    }
}

#[test]
fn simcompress_preserves_dual_simulation_on_social_graph() {
    let g = social_groups(5, 25, 80, 17);
    let c = bisimulation_compress(&g);
    assert!(c.quotient.size() <= g.size());

    // A pattern resolvable on both sides (ME is unique, so its block is a
    // singleton and resolution on the quotient succeeds).
    if let Some(p) = extract_pattern(&g, PatternSpec::new(3, 4), 5) {
        let q_orig = p.resolve(&g).unwrap();
        let direct = dual_simulation(&q_orig, &g, None)
            .map(|d| d.matches_sorted(q_orig.uo()).to_vec())
            .unwrap_or_default();
        let q_quot = match p.resolve(&c.quotient) {
            Ok(q) => q,
            Err(_) => return, // label vanished in quotient: impossible, but be safe
        };
        let via = c.dual_sim_via_quotient(&q_quot).unwrap_or_default();
        assert_eq!(direct, via, "quotient changed a dual-simulation answer");
    }
}

#[test]
fn simcompress_ratio_reasonable_on_redundant_graphs() {
    // A hub fanning out to many structurally identical followers in a few
    // groups: classic simulation-compressible shape. (social_groups' intra-
    // group chains make members positionally distinct, so that family
    // compresses poorly — by design of bisimulation.)
    let mut b = rbq_graph::GraphBuilder::new();
    let hub = b.add_node("ME");
    for gi in 0..4 {
        let label = format!("G{gi}");
        for _ in 0..40 {
            let v = b.add_node(&label);
            b.add_edge(hub, v);
        }
    }
    let g = b.build();
    let c = bisimulation_compress(&g);
    assert!(
        c.ratio(&g) < 0.2,
        "expected heavy compression, got {:.2}",
        c.ratio(&g)
    );
    // Block map is a partition.
    let total: usize = (0..c.block_count())
        .map(|b| c.members(rbq_graph::NodeId::new(b)).len())
        .sum();
    assert_eq!(total, g.node_count());
}

#[test]
fn quotient_blocks_share_labels() {
    let g = youtube_like(1_500, 29);
    let c = bisimulation_compress(&g);
    for bidx in 0..c.block_count() {
        let b = rbq_graph::NodeId::new(bidx);
        let members = c.members(b);
        let l0 = g.node_label(members[0]);
        for &m in members {
            assert_eq!(g.node_label(m), l0, "mixed-label block");
        }
        assert_eq!(c.quotient.node_label_str(b), g.node_label_str(members[0]));
    }
}
