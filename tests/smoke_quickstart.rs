//! CI smoke test mirroring `examples/quickstart.rs`: build a small social
//! graph, answer the paper's Fig. 1 pattern with RBSim at α = 0.1, and
//! assert a non-empty, exact answer — so every CI run exercises the
//! headline algorithm end-to-end (graph build → index → dynamic reduction
//! → matching → accuracy).

use rbq::rbq_core::{pattern_accuracy, rbsim, NeighborIndex, ResourceBudget};
use rbq::rbq_graph::{Graph, GraphBuilder, GraphView};
use rbq::rbq_pattern::{match_opt, PatternBuilder, ResolvedPattern};

/// The Fig. 1 running example at Example 2's scale: Michael, a hiking
/// group, cycling clubs, and cycling lovers.
fn fig1_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let michael = b.add_node("Michael");
    let hgs: Vec<_> = (0..96).map(|_| b.add_node("HG")).collect();
    let cc1 = b.add_node("CC");
    let cc2 = b.add_node("CC");
    let cc3 = b.add_node("CC");
    let cls: Vec<_> = (0..900).map(|_| b.add_node("CL")).collect();
    for &h in &hgs {
        b.add_edge(michael, h);
    }
    b.add_edge(michael, cc1);
    b.add_edge(michael, cc3);
    b.add_edge(cc2, cls[0]);
    let n = cls.len();
    let (cln_1, cln) = (cls[n - 2], cls[n - 1]);
    b.add_edge(cc1, cln_1);
    b.add_edge(cc1, cln);
    b.add_edge(cc3, cln);
    let hgm = hgs[hgs.len() - 1];
    b.add_edge(hgm, cln_1);
    b.add_edge(hgm, cln);
    b.build()
}

/// The pattern Q: Michael -> CC -> CL <- HG <- Michael, output node CL.
fn fig1_pattern(g: &Graph) -> ResolvedPattern {
    let mut pb = PatternBuilder::new();
    let q_me = pb.add_node("Michael");
    let q_cc = pb.add_node("CC");
    let q_hg = pb.add_node("HG");
    let q_cl = pb.add_node("CL");
    pb.add_edge(q_me, q_cc);
    pb.add_edge(q_me, q_hg);
    pb.add_edge(q_cc, q_cl);
    pb.add_edge(q_hg, q_cl);
    pb.personalized(q_me).output(q_cl);
    pb.build().resolve(g).expect("pattern resolves against G")
}

#[test]
fn quickstart_rbsim_at_alpha_01_finds_the_exact_answer() {
    let g = fig1_graph();
    let q = fig1_pattern(&g);
    let idx = NeighborIndex::build(&g);

    // α = 0.1: the budget is a tenth of |G| = |V| + |E|.
    let budget = ResourceBudget::from_ratio(&g, 0.1);
    let answer = rbsim(&g, &idx, &q, &budget);

    assert!(
        !answer.matches.is_empty(),
        "RBSim at α=0.1 must find the cycling lovers"
    );
    assert!(
        answer.gq_size as f64 <= 0.1 * g.size() as f64,
        "G_Q exceeded the α-bound: {} > 0.1 * {}",
        answer.gq_size,
        g.size()
    );

    // The running example is answerable exactly within the bound (Example 2).
    let exact = match_opt(&q, &g);
    assert_eq!(answer.matches, exact, "quickstart answer must be exact");
    let acc = pattern_accuracy(&exact, &answer.matches);
    assert_eq!(acc.f1, 1.0, "accuracy must be 100% on the running example");
}

#[test]
fn quickstart_budget_accounting_reports_visits() {
    let g = fig1_graph();
    let q = fig1_pattern(&g);
    let idx = NeighborIndex::build(&g);
    let budget = ResourceBudget::from_units(&g, 16);
    let answer = rbsim(&g, &idx, &q, &budget);
    assert!(answer.gq_size <= 16, "G_Q must respect a 16-unit budget");
    assert!(answer.visits.total() > 0, "visit accounting must be live");
    assert!(!answer.matches.is_empty(), "Example 2 answer is non-empty");
}
