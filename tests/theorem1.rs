//! Theorem 1's hardness gadget, exercised operationally.
//!
//! The paper proves exact resource-bounded querying NP-hard by reduction
//! from set cover: a length-2 path pattern over a DAG whose levels are the
//! personalized node, the candidate sets `C_j`, and the elements `x_i`.
//! A subgraph `G_Q` with `Q(G_Q) = Q(G)` of minimal size corresponds to a
//! minimum set cover. These tests build the gadget and verify that
//! correspondence by brute force on a small instance — evidence that our
//! strong-simulation semantics matches the reduction's behavior.

use rbq_graph::{Graph, GraphBuilder, GraphView, InducedSubgraph, NodeId};
use rbq_pattern::{strong_simulation_on_view, PatternBuilder, ResolvedPattern};

/// Set-cover instance: universe X = {0,1,2,3}, family F with minimum cover
/// size 2 ({C0, C2}).
const UNIVERSE: usize = 4;
const FAMILY: [&[usize]; 5] = [&[0, 1], &[1, 2], &[2, 3], &[0, 3], &[0]];
const MIN_COVER: usize = 2;

struct Gadget {
    g: Graph,
    vp: NodeId,
    sets: Vec<NodeId>,
    elems: Vec<NodeId>,
    q: ResolvedPattern,
}

fn build_gadget() -> Gadget {
    let mut b = GraphBuilder::new();
    let vp = b.add_node("ME");
    let sets: Vec<NodeId> = FAMILY.iter().map(|_| b.add_node("SET")).collect();
    let elems: Vec<NodeId> = (0..UNIVERSE).map(|_| b.add_node("ELEM")).collect();
    for (j, members) in FAMILY.iter().enumerate() {
        b.add_edge(vp, sets[j]);
        for &x in members.iter() {
            b.add_edge(sets[j], elems[x]);
        }
    }
    let g = b.build();

    // Path pattern of length 2: ME -> SET -> ELEM, output ELEM.
    let mut pb = PatternBuilder::new();
    let me = pb.add_node("ME");
    let s = pb.add_node("SET");
    let e = pb.add_node("ELEM");
    pb.add_edge(me, s).add_edge(s, e);
    pb.personalized(me).output(e);
    let q = pb.build().resolve(&g).unwrap();
    Gadget {
        g,
        vp,
        sets,
        elems,
        q,
    }
}

/// `Q(G_Q)` for the subgraph induced by `v_p`, the chosen sets, and all
/// elements.
fn answer_with_sets(gadget: &Gadget, chosen: &[usize]) -> Vec<NodeId> {
    let mut nodes = vec![gadget.vp];
    nodes.extend(chosen.iter().map(|&j| gadget.sets[j]));
    nodes.extend(gadget.elems.iter().copied());
    let sub = InducedSubgraph::new(&gadget.g, nodes);
    strong_simulation_on_view(&gadget.q, &sub)
}

#[test]
fn full_graph_answer_is_all_covered_elements() {
    let gadget = build_gadget();
    let all_sets: Vec<usize> = (0..FAMILY.len()).collect();
    let full = answer_with_sets(&gadget, &all_sets);
    // Every element is covered by some set, so Q(G) = all elements.
    assert_eq!(full, gadget.elems);
    // Sanity: evaluating on the full graph agrees.
    let direct = rbq_pattern::strong_simulation(&gadget.q, &gadget.g);
    assert_eq!(direct, gadget.elems);
}

#[test]
fn covers_preserve_the_answer_and_non_covers_do_not() {
    let gadget = build_gadget();
    let exact = rbq_pattern::strong_simulation(&gadget.q, &gadget.g);

    for mask in 0u32..(1 << FAMILY.len()) {
        let chosen: Vec<usize> = (0..FAMILY.len()).filter(|&j| mask >> j & 1 == 1).collect();
        let mut covered = [false; UNIVERSE];
        for &j in &chosen {
            for &x in FAMILY[j] {
                covered[x] = true;
            }
        }
        let is_cover = covered.iter().all(|&c| c);
        let ans = answer_with_sets(&gadget, &chosen);
        if is_cover {
            assert_eq!(
                ans, exact,
                "cover {chosen:?} must preserve the exact answer"
            );
        } else {
            assert_ne!(
                ans, exact,
                "non-cover {chosen:?} cannot preserve the exact answer"
            );
        }
    }
}

#[test]
fn minimum_preserving_subgraph_is_minimum_cover() {
    let gadget = build_gadget();
    let exact = rbq_pattern::strong_simulation(&gadget.q, &gadget.g);
    // Brute-force the smallest set-node count whose induced G_Q preserves
    // Q(G): must equal the minimum cover size.
    let mut best = usize::MAX;
    for mask in 0u32..(1 << FAMILY.len()) {
        let chosen: Vec<usize> = (0..FAMILY.len()).filter(|&j| mask >> j & 1 == 1).collect();
        if answer_with_sets(&gadget, &chosen) == exact {
            best = best.min(chosen.len());
        }
    }
    assert_eq!(
        best, MIN_COVER,
        "minimal preserving G_Q ↔ minimum set cover (Theorem 1 reduction)"
    );
}

#[test]
fn rbsim_on_gadget_respects_budget_and_soundness() {
    // The bounded algorithm cannot solve set cover optimally (Theorem 1),
    // but it must stay sound and within budget on the gadget.
    let gadget = build_gadget();
    let idx = rbq_core::NeighborIndex::build(&gadget.g);
    let exact = rbq_pattern::strong_simulation(&gadget.q, &gadget.g);
    for units in [3usize, 8, 14, gadget.g.size()] {
        let budget = rbq_core::ResourceBudget::from_units(&gadget.g, units);
        let ans = rbq_core::rbsim(&gadget.g, &idx, &gadget.q, &budget);
        assert!(ans.gq_size <= units);
        for v in &ans.matches {
            assert!(exact.contains(v));
        }
    }
    // Full budget: exact.
    let budget = rbq_core::ResourceBudget::from_ratio(&gadget.g, 1.0);
    let ans = rbq_core::rbsim(&gadget.g, &idx, &gadget.q, &budget);
    assert_eq!(ans.matches, exact);
}
