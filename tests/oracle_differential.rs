//! Differential oracles: the resource-bounded algorithms checked against
//! their unbounded reference implementations on proptest-random inputs.
//!
//! The α = 1 cases are the exactness claims the paper's theorems pivot on:
//! with the whole graph admissible, RBSim must coincide with `MatchOpt`
//! (Theorem 3(b)), RBSub with `VF2OPT`, and RBReach with plain BFS (the
//! α = 1 end of Theorem 2's impossibility trade-off). Below α = 1 the
//! oracles weaken to one-sided guarantees — pattern answers stay subsets
//! of the exact answers (verified embeddings / simulations only), and
//! RBReach never reports a false positive.

use proptest::prelude::*;
use rbq::rbq_core::{rbsim, rbsub, NeighborIndex, ResourceBudget};
use rbq::rbq_graph::builder::graph_from_edges;
use rbq::rbq_graph::traverse::reaches;
use rbq::rbq_graph::{Graph, GraphBuilder, NodeId};
use rbq::rbq_pattern::{match_opt, vf2_opt, Pattern, PatternBuilder, Vf2Config};
use rbq::rbq_reach::HierarchicalIndex;

/// A random digraph over ≤ 5 labels with node 0 relabeled to the unique
/// anchor `"ME"`. Sizes are chosen so the unbounded baselines stay cheap
/// enough for the release-mode CI job to run hundreds of cases.
fn arb_anchored_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..5, n - 1);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        (labels, edges).prop_map(move |(labels, edges)| {
            let mut b = GraphBuilder::new();
            b.add_node("ME");
            for l in &labels {
                b.add_node(&format!("L{l}"));
            }
            for &(u, v) in &edges {
                b.add_edge(NodeId(u), NodeId(v));
            }
            b.build()
        })
    })
}

/// A connected anchored pattern with branching: a random-parent tree over
/// 2–5 nodes (edge directions random) plus up to two extra edges, labels
/// drawn from the graph's alphabet, output on the last node.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let node = (0u8..5, prop::bool::ANY);
    (
        proptest::collection::vec(node, 1..5),
        proptest::collection::vec((0u8..8, 0u8..8, prop::bool::ANY), 0..3),
    )
        .prop_map(|(tree, extra)| {
            let mut pb = PatternBuilder::new();
            let me = pb.add_node("ME");
            let mut ids = vec![me];
            for (i, &(l, fwd)) in tree.iter().enumerate() {
                let u = pb.add_node(&format!("L{l}"));
                // Random parent among earlier nodes keeps it connected and
                // branches (unlike a chain).
                let parent = ids[(l as usize * 31 + i) % ids.len()];
                if fwd {
                    pb.add_edge(parent, u);
                } else {
                    pb.add_edge(u, parent);
                }
                ids.push(u);
            }
            for &(a, b, fwd) in &extra {
                let (a, b) = (ids[a as usize % ids.len()], ids[b as usize % ids.len()]);
                if a != b {
                    if fwd {
                        pb.add_edge(a, b);
                    } else {
                        pb.add_edge(b, a);
                    }
                }
            }
            pb.personalized(me).output(*ids.last().expect("nonempty"));
            pb.build()
        })
}

/// A random digraph without the anchor constraint, for reachability.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..4, n);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        (labels, edges).prop_map(move |(labels, edges)| {
            let names: Vec<String> = labels.iter().map(|l| format!("L{l}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            graph_from_edges(&refs, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Oracle 1 (Theorem 3(b) at α = 1): RBSim ≡ MatchOpt.
    #[test]
    fn rbsim_at_alpha_one_equals_match_opt(
        g in arb_anchored_graph(),
        p in arb_pattern(),
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsim(&g, &idx, &q, &budget);
        let exact = match_opt(&q, &g);
        prop_assert_eq!(ans.matches, exact, "RBSim(α=1) diverged from MatchOpt");
    }

    /// Oracle 2 (α = 1 isomorphism): RBSub ≡ VF2OPT.
    #[test]
    fn rbsub_at_alpha_one_equals_vf2opt(
        g in arb_anchored_graph(),
        p in arb_pattern(),
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsub(&g, &idx, &q, &budget);
        let exact = vf2_opt(&q, &g, Vf2Config::default());
        prop_assert_eq!(ans.matches, exact.output_matches, "RBSub(α=1) diverged from VF2OPT");
    }

    /// Oracle 3: RBSub answers are verified embeddings at *every* budget —
    /// each reported output match extends to a full embedding in `G`
    /// (equivalently: is among VF2's matches on the whole graph).
    #[test]
    fn rbsub_answers_are_verified_embeddings(
        g in arb_anchored_graph(),
        p in arb_pattern(),
        units in 1usize..48,
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let budget = ResourceBudget::from_units(&g, units);
        let ans = rbsub(&g, &idx, &q, &budget);
        prop_assert!(ans.gq_size <= units, "budget violated: {} > {}", ans.gq_size, units);
        let exact = vf2_opt(&q, &g, Vf2Config::default());
        for v in &ans.matches {
            prop_assert!(
                exact.output_matches.contains(v),
                "unverifiable embedding at {:?} under budget {}", v, units
            );
        }
    }

    /// Oracle 4: RBSim answers stay simulations of the full graph at every
    /// budget (subset of MatchOpt).
    #[test]
    fn rbsim_answers_are_sound_at_any_budget(
        g in arb_anchored_graph(),
        p in arb_pattern(),
        units in 1usize..48,
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let budget = ResourceBudget::from_units(&g, units);
        let ans = rbsim(&g, &idx, &q, &budget);
        let exact = match_opt(&q, &g);
        for v in &ans.matches {
            prop_assert!(exact.contains(v), "spurious simulation match {:?}", v);
        }
    }

    /// Oracle 5 (α = 1 reachability): RBReach ≡ BFS on every pair.
    #[test]
    fn rbreach_at_alpha_one_equals_bfs(g in arb_graph()) {
        let idx = HierarchicalIndex::build(&g, 1.0);
        for s in g.nodes() {
            for t in g.nodes() {
                let got = idx.query(s, t);
                let want = reaches(&g, s, t).0;
                prop_assert_eq!(
                    got.reachable, want,
                    "RBReach(α=1) diverged from BFS on {:?}->{:?}", s, t
                );
                if got.reachable {
                    prop_assert!(got.certified, "true answers must be certified");
                }
            }
        }
    }

    /// Oracle 6 (Theorem 4(c) below α = 1): never a false positive, and a
    /// `true` from RBReach at any α agrees with BFS.
    #[test]
    fn rbreach_below_alpha_one_is_one_sided(g in arb_graph(), alpha in 0.05f64..1.0) {
        let idx = HierarchicalIndex::build(&g, alpha);
        for s in g.nodes() {
            for t in g.nodes() {
                if idx.query(s, t).reachable {
                    prop_assert!(
                        reaches(&g, s, t).0,
                        "false positive {:?}->{:?} at alpha {}", s, t, alpha
                    );
                }
            }
        }
    }
}
