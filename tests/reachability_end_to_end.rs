//! Cross-crate integration tests for resource-bounded reachability:
//! generators -> compression -> hierarchical index -> RBReach, checked
//! against BFS ground truth and Theorem 4's guarantees.

use rbq_core::reachability_accuracy;
use rbq_graph::GraphView;
use rbq_reach::{bfs_query, BfsOptIndex, HierarchicalIndex, LandmarkVectors};
use rbq_workload::{
    layered_dag, reachability_ground_truth, sample_reachability_queries, uniform_random,
    yahoo_like, youtube_like,
};

#[test]
fn theorem4_never_false_positive() {
    for (name, g) in [
        ("youtube", youtube_like(5_000, 3)),
        ("uniform", uniform_random(4_000, 8_000, 15, 3)),
        ("dag", layered_dag(20, 150, 0.01, 15, 3)),
    ] {
        let idx = HierarchicalIndex::build(&g, 0.01);
        let queries = sample_reachability_queries(&g, 120, 0.5, 7);
        let truth = reachability_ground_truth(&g, &queries);
        for (&(s, t), &exact) in queries.iter().zip(&truth) {
            let ans = idx.query(s, t);
            assert!(
                !ans.reachable || exact,
                "{name}: false positive on {s:?}->{t:?}"
            );
        }
    }
}

#[test]
fn theorem4_visit_and_size_bounds() {
    let g = yahoo_like(8_000, 5);
    for alpha in [0.005, 0.02, 0.05] {
        let idx = HierarchicalIndex::build(&g, alpha);
        let bound = (alpha * g.size() as f64) as usize;
        assert!(
            idx.index_size() <= bound.max(1),
            "index size {} exceeds α|G| = {bound}",
            idx.index_size()
        );
        let queries = sample_reachability_queries(&g, 60, 0.5, 9);
        for &(s, t) in &queries {
            let ans = idx.query(s, t);
            assert!(
                ans.visits <= bound + 2,
                "visits {} exceed α|G| = {bound}",
                ans.visits
            );
        }
    }
}

#[test]
fn accuracy_high_at_moderate_alpha() {
    let g = youtube_like(8_000, 13);
    let idx = HierarchicalIndex::build(&g, 0.02);
    let queries = sample_reachability_queries(&g, 100, 0.5, 21);
    let truth = reachability_ground_truth(&g, &queries);
    let got: Vec<bool> = queries
        .iter()
        .map(|&(s, t)| idx.query(s, t).reachable)
        .collect();
    let acc = reachability_accuracy(&truth, &got);
    assert!(
        acc.f1 >= 0.9,
        "accuracy {:.3} below the paper's observed range",
        acc.f1
    );
}

#[test]
fn accuracy_monotone_in_alpha_on_hard_dag() {
    // Layered DAGs have no SCC shortcut; accuracy must grow with alpha.
    let g = layered_dag(30, 100, 0.012, 15, 5);
    let queries = sample_reachability_queries(&g, 100, 0.6, 3);
    let truth = reachability_ground_truth(&g, &queries);
    let mut accs = Vec::new();
    for alpha in [0.002, 0.01, 0.05, 0.2] {
        let idx = HierarchicalIndex::build(&g, alpha);
        let got: Vec<bool> = queries
            .iter()
            .map(|&(s, t)| idx.query(s, t).reachable)
            .collect();
        accs.push(reachability_accuracy(&truth, &got).f1);
    }
    assert!(
        accs.last().unwrap() >= accs.first().unwrap(),
        "accuracy should not degrade with alpha: {accs:?}"
    );
    assert!(
        *accs.last().unwrap() >= 0.85,
        "final accuracy too low: {accs:?}"
    );
}

#[test]
fn bfsopt_is_exact_everywhere() {
    let g = youtube_like(4_000, 29);
    let idx = BfsOptIndex::build(&g);
    let queries = sample_reachability_queries(&g, 150, 0.4, 31);
    for &(s, t) in &queries {
        assert_eq!(idx.query(s, t), bfs_query(&g, s, t).0, "{s:?}->{t:?}");
    }
}

#[test]
fn lm_is_sound_and_less_accurate_than_exact() {
    let g = layered_dag(25, 120, 0.012, 15, 37);
    let lm = LandmarkVectors::build(&g, 41);
    let queries = sample_reachability_queries(&g, 100, 0.5, 43);
    let truth = reachability_ground_truth(&g, &queries);
    let got: Vec<bool> = queries.iter().map(|&(s, t)| lm.query(s, t)).collect();
    for ((&(s, t), &exact), &ans) in queries.iter().zip(&truth).zip(&got) {
        assert!(!ans || exact, "LM false positive {s:?}->{t:?}");
    }
    // LM answers at least the trivially-false pairs correctly.
    let acc = reachability_accuracy(&truth, &got);
    assert!(acc.f1 > 0.3);
}

#[test]
fn rbreach_matches_lm_on_web_like_graphs() {
    // The paper's headline comparison (Fig. 8(m)/(n)) runs on web/social
    // snapshots. At our scaled-down sizes LM's 4·log|V| landmarks cover
    // relatively much more of the graph than at 1.6M nodes, so LM is far
    // stronger here than the paper's 69-74%; RBReach must still match it
    // while guaranteeing zero false positives and bounded visits.
    let g = yahoo_like(15_000, 53);
    let queries = rbq_workload::sample_hard_reachability_queries(&g, 120, 0.5, 59);
    let truth = reachability_ground_truth(&g, &queries);
    let hier = HierarchicalIndex::build(&g, 0.02);
    let lm = LandmarkVectors::build(&g, 61);
    let hier_ans: Vec<bool> = queries
        .iter()
        .map(|&(s, t)| hier.query(s, t).reachable)
        .collect();
    let lm_ans: Vec<bool> = queries.iter().map(|&(s, t)| lm.query(s, t)).collect();
    let hier_acc = reachability_accuracy(&truth, &hier_ans).f1;
    let lm_acc = reachability_accuracy(&truth, &lm_ans).f1;
    assert!(
        hier_acc >= lm_acc - 0.02,
        "RBReach ({hier_acc:.3}) should not lose materially to LM ({lm_acc:.3})"
    );
    assert!(hier_acc >= 0.95);
}

#[test]
fn coverage_selection_beats_degree_rank_on_deep_dags() {
    // Ablation (DESIGN.md §6): on deep layered DAGs the paper's deg×rank
    // greedy clusters landmarks near the top layers; cover-size selection
    // spreads them and recovers accuracy.
    use rbq_reach::hierarchy::{IndexParams, SelectionStrategy};
    let g = layered_dag(40, 80, 0.015, 15, 53);
    let queries = rbq_workload::sample_hard_reachability_queries(&g, 120, 0.6, 59);
    let truth = reachability_ground_truth(&g, &queries);
    let acc_of = |strategy| {
        let idx =
            HierarchicalIndex::build_with(&g, IndexParams::new(0.03).with_selection(strategy));
        let got: Vec<bool> = queries
            .iter()
            .map(|&(s, t)| idx.query(s, t).reachable)
            .collect();
        reachability_accuracy(&truth, &got).f1
    };
    let deg_rank = acc_of(SelectionStrategy::DegreeRank);
    let coverage = acc_of(SelectionStrategy::Coverage);
    assert!(
        coverage + 0.05 >= deg_rank,
        "coverage ({coverage:.3}) should be competitive with deg×rank ({deg_rank:.3})"
    );
}

#[test]
fn index_handles_cyclic_inputs() {
    // Heavy SCC structure: correctness must survive compression.
    let g = uniform_random(3_000, 12_000, 15, 67); // dense -> big SCCs
    let idx = HierarchicalIndex::build(&g, 0.02);
    let queries = sample_reachability_queries(&g, 80, 0.5, 71);
    let truth = reachability_ground_truth(&g, &queries);
    let mut correct = 0;
    for (&(s, t), &exact) in queries.iter().zip(&truth) {
        let ans = idx.query(s, t);
        assert!(!ans.reachable || exact);
        if ans.reachable == exact {
            correct += 1;
        }
    }
    assert!(correct * 10 >= queries.len() * 8, "accuracy below 80%");
}
