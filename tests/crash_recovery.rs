//! Crash-recovery differential: a panic injected at ANY of the registered
//! IO fault points (`wal.append`, `wal.fsync`, `snapshot.write`,
//! `snapshot.load`, `wal.replay`) — during ingest, checkpoint, or a prior
//! recovery attempt — leaves on-disk state from which `Engine::recover`
//! rebuilds an engine equivalent to a fresh one built from the same
//! surviving prefix of delta batches: same graph, byte-identical answers
//! on the mixed workload.
//!
//! Runs only under `cargo test --features fault-injection`.
#![cfg(feature = "fault-injection")]

use rbq::rbq_engine::faultpoint::{arm, FaultAction, FaultPlan};
use rbq::rbq_engine::{
    Answer, BudgetSpec, Durability, DurabilityConfig, Engine, EngineConfig, Query,
};
use rbq::rbq_workload::{power_law, sample_mixed_workload, MixedWorkloadSpec};
use rbq_graph::{DeltaBatch, Graph, NodeId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Fault plans are process-global; every test holds this for its body.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rbq_crashrec_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fixture() -> (Arc<Graph>, Vec<Query>) {
    static FIX: OnceLock<(Arc<Graph>, Vec<Query>)> = OnceLock::new();
    let (g, qs) = FIX.get_or_init(|| {
        let g = Arc::new(power_law(300, 3, 4, 0xd15c));
        let qs = sample_mixed_workload(
            &g,
            &MixedWorkloadSpec {
                count: 16,
                ..Default::default()
            },
            11,
        );
        (g, qs)
    });
    (g.clone(), qs.clone())
}

fn cfg() -> EngineConfig {
    EngineConfig {
        pattern_budget: BudgetSpec::Ratio(0.2),
        reach_alpha: 0.2,
        threads: 1,
        cache_capacity: 0,
        ..Default::default()
    }
}

/// Batches of new nodes wired into the fixture graph (n = 300).
fn sample_batches() -> Vec<DeltaBatch> {
    (0..4u32)
        .map(|i| {
            let mut b = DeltaBatch::new();
            b.add_node("NEW");
            let v = NodeId(300 + i);
            b.add_edge(NodeId(i * 37 % 300), v);
            b.add_edge(v, NodeId((i * 53 + 7) % 300));
            b
        })
        .collect()
}

fn answers(engine: &Engine, qs: &[Query]) -> Vec<Answer> {
    engine
        .run_batch(qs)
        .results
        .iter()
        .map(|r| r.answer.clone())
        .collect()
}

/// The reference: a fresh, non-durable engine over the base graph with
/// the first `k` batches plainly applied.
fn reference_answers(
    base: &Arc<Graph>,
    batches: &[DeltaBatch],
    k: usize,
    qs: &[Query],
) -> Vec<Answer> {
    let mut g = (**base).clone();
    for b in &batches[..k] {
        g = g.apply_delta(b).expect("reference apply").0;
    }
    answers(&Engine::new(Arc::new(g), cfg()), qs)
}

/// Crash during durable ingest at `point` on its `nth` firing, then pin
/// `recover()` ≡ fresh-engine-from-surviving-prefix.
fn ingest_crash_scenario(point: &'static str, nth: u64, crash_batch: usize) {
    let (g, qs) = fixture();
    let batches = sample_batches();
    let dir = fresh_dir("ingest");

    let engine = Engine::new(g.clone(), cfg());
    engine
        .enable_durability(&DurabilityConfig::new(&dir))
        .expect("enable durability");
    let crashed = {
        let _plan = arm(FaultPlan::new().on_nth(point, nth, FaultAction::Panic));
        let mut crashed = false;
        for b in &batches {
            if catch_unwind(AssertUnwindSafe(|| engine.apply_deltas(b))).is_err() {
                crashed = true;
                break;
            }
        }
        crashed
    };
    assert!(crashed, "{point} nth={nth}: injected fault never fired");
    drop(engine); // the "process" died; only the directory survives

    let (recovered, report) = Engine::recover(&dir, cfg())
        .unwrap_or_else(|e| panic!("{point} nth={nth}: recovery failed: {e}"));
    let k = report.last_seq as usize;
    // The crash hit batch `crash_batch`: everything before it is durable,
    // and the crashed batch itself survives only if its bytes reached the
    // file before the panic (wal.fsync fires after the record write).
    assert!(
        k == crash_batch || k == crash_batch + 1,
        "{point} nth={nth}: surviving prefix {k} not adjacent to crash batch {crash_batch}"
    );
    assert!(
        report.quarantined == 0,
        "{point}: clean crash quarantined records"
    );
    let got = answers(&recovered, &qs);
    let want = reference_answers(&g, &batches, k, &qs);
    assert_eq!(
        got, want,
        "{point} nth={nth}: recovered answers diverge from surviving-prefix reference"
    );
}

#[test]
fn crash_during_wal_append_recovers_prefix() {
    let _s = serial();
    for k in 0..sample_batches().len() {
        ingest_crash_scenario("wal.append", k as u64, k);
    }
}

#[test]
fn crash_during_wal_fsync_recovers_prefix() {
    let _s = serial();
    for k in 0..sample_batches().len() {
        ingest_crash_scenario("wal.fsync", k as u64, k);
    }
}

/// `snapshot.write` fires when the durable directory is first seeded: a
/// crash there leaves no snapshot, and recovery reports it typed.
#[test]
fn crash_during_initial_snapshot_write_is_typed_on_recovery() {
    let _s = serial();
    let (g, _qs) = fixture();
    let dir = fresh_dir("seed");
    let engine = Engine::new(g, cfg());
    {
        let _plan = arm(FaultPlan::new().on_nth("snapshot.write", 0, FaultAction::Panic));
        let r = catch_unwind(AssertUnwindSafe(|| {
            engine.enable_durability(&DurabilityConfig::new(&dir))
        }));
        assert!(r.is_err(), "seeding snapshot.write fault never fired");
    }
    assert!(
        !engine.durability_enabled(),
        "crashed seeding left durability on"
    );
    match Engine::recover(&dir, cfg()) {
        Err(e) => {
            let _ = e.to_string();
        }
        Ok(_) => panic!("recovery succeeded with no snapshot on disk"),
    }
}

/// A crash inside `checkpoint` (snapshot rewrite) must not lose state:
/// the old snapshot plus the full WAL still recover everything.
#[test]
fn crash_during_checkpoint_snapshot_write_loses_nothing() {
    let _s = serial();
    let (g, qs) = fixture();
    let batches = sample_batches();
    let dir = fresh_dir("ckpt");
    let mut d = Durability::create(&dir, &g).expect("create durable state");
    for b in &batches {
        d.append(b).expect("append");
    }
    // The graph content the checkpoint would have written is irrelevant to
    // the contract — the crash happens before any bytes land.
    {
        let _plan = arm(FaultPlan::new().on_nth("snapshot.write", 0, FaultAction::Panic));
        let r = catch_unwind(AssertUnwindSafe(|| d.checkpoint(&g)));
        assert!(r.is_err(), "checkpoint snapshot.write fault never fired");
    }
    drop(d);
    let (recovered, report) = Engine::recover(&dir, cfg()).expect("recover after checkpoint crash");
    assert_eq!(report.last_seq as usize, batches.len());
    let got = answers(&recovered, &qs);
    let want = reference_answers(&g, &batches, batches.len(), &qs);
    assert_eq!(got, want, "checkpoint crash lost durable batches");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash during a RECOVERY attempt (`snapshot.load` / `wal.replay`), then
/// a second, clean recovery must still serve the full surviving prefix —
/// recovery is read-only until it succeeds, so it is retryable.
#[test]
fn crash_during_recovery_is_retryable() {
    let _s = serial();
    let (g, qs) = fixture();
    let batches = sample_batches();
    for (point, nth) in [
        ("snapshot.load", 0u64),
        ("wal.replay", 0),
        ("wal.replay", 2),
    ] {
        let dir = fresh_dir("rerecover");
        let mut d = Durability::create(&dir, &g).expect("create durable state");
        for b in &batches {
            d.append(b).expect("append");
        }
        drop(d);
        {
            let _plan = arm(FaultPlan::new().on_nth(point, nth, FaultAction::Panic));
            let r = catch_unwind(AssertUnwindSafe(|| Engine::recover(&dir, cfg())));
            assert!(r.is_err(), "{point} nth={nth}: recovery fault never fired");
        }
        let (recovered, report) =
            Engine::recover(&dir, cfg()).expect("clean recovery after crashed recovery");
        assert_eq!(
            report.last_seq as usize,
            batches.len(),
            "{point}: lost batches"
        );
        let got = answers(&recovered, &qs);
        let want = reference_answers(&g, &batches, batches.len(), &qs);
        assert_eq!(got, want, "{point} nth={nth}: retried recovery diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
