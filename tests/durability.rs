//! Durable-state robustness, feature-independent: snapshot + WAL round
//! trips through the public engine API, and loader hostility — arbitrary
//! corruption of the on-disk bytes (bit flips, truncation, header
//! scribbles) must surface as a typed error or a valid-prefix recovery,
//! never a panic. The crash-injection differential lives in
//! `tests/crash_recovery.rs` (fault-injection feature).

use proptest::prelude::*;
use rbq::rbq_engine::{Durability, DurabilityError, Engine, EngineConfig};
use rbq::rbq_graph::{load_snapshot, snapshot, wal, DeltaBatch, Graph, GraphBuilder, NodeId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per call (tests run in parallel).
fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rbq_durability_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small labelled base graph: a chain with a side branch.
fn base_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
        .iter()
        .map(|l| b.add_node(l))
        .collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    b.add_edge(ids[0], ids[3]);
    b.build()
}

/// Three batches that add nodes, add edges, and remove one edge.
fn sample_batches() -> Vec<DeltaBatch> {
    let mut b1 = DeltaBatch::new();
    b1.add_node("G");
    b1.add_edge(NodeId(5), NodeId(6));
    let mut b2 = DeltaBatch::new();
    b2.add_node("H");
    b2.add_edge(NodeId(6), NodeId(7));
    b2.remove_edge(NodeId(0), NodeId(3));
    let mut b3 = DeltaBatch::new();
    b3.add_edge(NodeId(7), NodeId(0));
    vec![b1, b2, b3]
}

/// Canonical signature for graph equality: labels in id order plus the
/// sorted edge list (insensitive to overlay vs compacted representation).
fn graph_sig(g: &Graph) -> (Vec<String>, Vec<(u32, u32)>) {
    let labels = g
        .nodes()
        .map(|v| g.node_label_str(v).to_owned())
        .collect::<Vec<_>>();
    let mut edges = g.edges().map(|(u, v)| (u.0, v.0)).collect::<Vec<_>>();
    edges.sort_unstable();
    (labels, edges)
}

/// The expected state after applying the first `k` batches plainly.
fn apply_prefix(base: &Graph, batches: &[DeltaBatch], k: usize) -> Graph {
    let mut g = base.clone();
    for b in &batches[..k] {
        g = g.apply_delta(b).expect("sample batch applies").0;
    }
    g
}

/// Seed a durable directory: snapshot of the base graph at seq 0 plus one
/// WAL record per sample batch. Returns the directory.
fn seeded_state(tag: &str) -> (PathBuf, Graph, Vec<DeltaBatch>) {
    let dir = fresh_dir(tag);
    let g = base_graph();
    let batches = sample_batches();
    let mut d = Durability::create(&dir, &g).expect("create durable state");
    for b in &batches {
        d.append(b).expect("append batch");
    }
    (dir, g, batches)
}

#[test]
fn engine_durable_roundtrip_matches_plain_apply() {
    let dir = fresh_dir("roundtrip");
    let g = base_graph();
    let batches = sample_batches();

    let engine = Engine::new(std::sync::Arc::new(g.clone()), EngineConfig::default());
    engine
        .enable_durability(&rbq::rbq_engine::DurabilityConfig::new(&dir))
        .expect("enable durability");
    assert!(engine.durability_enabled());
    for b in &batches {
        engine.apply_deltas(b).expect("durable apply");
    }
    drop(engine);

    let (recovered, report) =
        Engine::recover(&dir, EngineConfig::default()).expect("recover after clean shutdown");
    assert_eq!(report.snapshot_seq, 0);
    assert_eq!(report.replayed, batches.len());
    assert_eq!(report.last_seq, batches.len() as u64);
    assert!(!report.torn_tail);
    assert_eq!(report.quarantined, 0);
    let expected = apply_prefix(&g, &batches, batches.len());
    assert_eq!(graph_sig(&recovered.graph()), graph_sig(&expected));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_wal_truncation_recovers_a_valid_prefix() {
    let (dir, g, batches) = seeded_state("trunc");
    let wal_path = dir.join(wal::WAL_FILE);
    let full = std::fs::read(&wal_path).expect("read wal");
    let magic_len = wal::WAL_FILE_MAGIC.len() + 1;
    // Record boundaries: offsets at which the log holds exactly N complete
    // records. A cut at a boundary is a legitimately shorter log; a cut
    // anywhere else is a torn tail.
    let mut boundaries = vec![magic_len];
    let mut p = magic_len;
    while p + 8 <= full.len() {
        // invariant: the loop condition guarantees 4 bytes from `p`.
        let len = u32::from_le_bytes(full[p..p + 4].try_into().unwrap()) as usize;
        p += 8 + len;
        boundaries.push(p);
    }
    for cut in magic_len..full.len() {
        std::fs::write(&wal_path, &full[..cut]).expect("truncate wal");
        let (rg, _d, report) = Durability::recover(&dir).expect("truncated WAL must recover");
        let k = report.last_seq as usize;
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(k, complete, "cut {cut}: wrong surviving prefix");
        assert_eq!(
            report.torn_tail,
            !boundaries.contains(&cut),
            "cut {cut}: torn-tail misreported"
        );
        let expected = apply_prefix(&g, &batches, k);
        assert_eq!(graph_sig(&rg), graph_sig(&expected), "cut {cut}");
        // Recovery rewrites the log to the valid prefix; restore the full
        // log for the next iteration.
        std::fs::write(&wal_path, &full).expect("restore wal");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn header_scribbles_are_typed_errors() {
    let (dir, _g, _batches) = seeded_state("hdr");
    // Snapshot magic replaced: BadMagic, typed.
    let snap_path = dir.join(snapshot::SNAPSHOT_FILE);
    let good = std::fs::read(&snap_path).expect("read snapshot");
    let mut bad = good.clone();
    bad[..4].copy_from_slice(b"#bad");
    std::fs::write(&snap_path, &bad).expect("scribble snapshot");
    match Durability::recover(&dir) {
        Err(DurabilityError::Snapshot(e)) => {
            assert!(matches!(e, rbq::rbq_graph::SnapshotError::BadMagic { .. }));
        }
        other => panic!("scribbled snapshot magic not typed: {other:?}"),
    }
    std::fs::write(&snap_path, &good).expect("restore snapshot");

    // WAL magic replaced: BadMagic through the Wal variant.
    let wal_path = dir.join(wal::WAL_FILE);
    let good_wal = std::fs::read(&wal_path).expect("read wal");
    let mut bad_wal = good_wal.clone();
    bad_wal[..4].copy_from_slice(b"#bad");
    std::fs::write(&wal_path, &bad_wal).expect("scribble wal");
    match Durability::recover(&dir) {
        Err(DurabilityError::Wal(e)) => {
            assert!(matches!(e, rbq::rbq_graph::WalError::BadMagic { .. }));
        }
        other => panic!("scribbled WAL magic not typed: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_snapshot_is_a_typed_error() {
    let dir = fresh_dir("missing");
    std::fs::create_dir_all(&dir).expect("mkdir");
    assert!(matches!(
        Durability::recover(&dir),
        Err(DurabilityError::Snapshot(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_alone_serves_without_a_wal() {
    let dir = fresh_dir("snaponly");
    let g = base_graph();
    write_state_snapshot_only(&dir, &g);
    let (rg, _d, report) = Durability::recover(&dir).expect("snapshot-only recovery");
    assert_eq!(report.replayed, 0);
    assert_eq!(graph_sig(&rg), graph_sig(&g));
    let _ = std::fs::remove_dir_all(&dir);
}

fn write_state_snapshot_only(dir: &std::path::Path, g: &Graph) {
    std::fs::create_dir_all(dir).expect("mkdir");
    rbq::rbq_graph::write_snapshot(g, &dir.join(snapshot::SNAPSHOT_FILE), 0)
        .expect("write snapshot");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Hostile loader input: flip one bit, truncate to an arbitrary
    /// length, or scribble over an arbitrary span of either durable file,
    /// then drive the full recovery path. The contract: recovery either
    /// returns a typed error or a state equal to some valid prefix of the
    /// logged batches — and it never panics (checked structurally: any
    /// panic would abort this test).
    #[test]
    fn corrupted_state_never_panics_and_prefixes_hold(
        target_wal in proptest::bool::ANY,
        mode in 0usize..3,
        pos in 0usize..8192,
        bit in 0u32..8,
        span in 1usize..16,
        fill in 0usize..256,
    ) {
        let fill = fill as u8;
        let (dir, g, batches) = seeded_state("prop");
        let path = if target_wal {
            dir.join(wal::WAL_FILE)
        } else {
            dir.join(snapshot::SNAPSHOT_FILE)
        };
        let mut bytes = std::fs::read(&path).expect("read state file");
        let len = bytes.len();
        prop_assume!(len > 0);
        match mode {
            0 => bytes[pos % len] ^= 1u8 << bit,
            1 => bytes.truncate(pos % len),
            _ => {
                let start = pos % len;
                let end = (start + span).min(len);
                for b in &mut bytes[start..end] {
                    *b = fill;
                }
            }
        }
        std::fs::write(&path, &bytes).expect("write corrupted file");

        match Durability::recover(&dir) {
            Ok((rg, _d, report)) => {
                let k = report.last_seq as usize;
                prop_assert!(k <= batches.len(), "impossible prefix {k}");
                let expected = apply_prefix(&g, &batches, k);
                prop_assert_eq!(graph_sig(&rg), graph_sig(&expected));
            }
            Err(e) => {
                // Typed rejection — render it to prove Display is total.
                let _ = e.to_string();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same hostility against the raw snapshot loader: a snapshot that
    /// loads after corruption must be byte-identical to the original
    /// graph (the CRC makes silent misloads effectively impossible).
    #[test]
    fn snapshot_loader_rejects_or_roundtrips(
        pos in 0usize..8192,
        bit in 0u32..8,
    ) {
        let dir = fresh_dir("snapflip");
        let g = base_graph();
        write_state_snapshot_only(&dir, &g);
        let path = dir.join(snapshot::SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).expect("read snapshot");
        let len = bytes.len();
        bytes[pos % len] ^= 1u8 << bit;
        std::fs::write(&path, &bytes).expect("write corrupted snapshot");
        match load_snapshot(&path) {
            Ok((lg, meta)) => {
                // Only a flip that the CRC cannot see could load — and
                // then the content must still match exactly.
                prop_assert_eq!(meta.seq, 0);
                prop_assert_eq!(graph_sig(&lg), graph_sig(&g));
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
