//! Scratch-reuse differential oracles (PR 5): every scratch-threaded entry
//! point must return results **identical** to fresh construction, for any
//! history of prior queries through the same scratch. The scratches under
//! test: `rbq_graph::SubgraphScratch` (the `G_Q` buffers),
//! `rbq_pattern::DualSimScratch` (the fixpoint state), and
//! `rbq_core::PatternScratch` (the full `Search`/`Pick` + evaluation path,
//! including the epoch-stamped pair arrays and guard/potential memos).

use proptest::prelude::*;
use rbq::rbq_core::guard::Semantics;
use rbq::rbq_core::{
    rbsim, rbsim_with, search_reduced_graph_scratch, search_reduced_graph_with, NeighborIndex,
    PatternAnswer, PatternScratch, PickPolicy, ReductionConfig, ReductionScratch, ResourceBudget,
};
use rbq::rbq_graph::builder::graph_from_edges;
use rbq::rbq_graph::{DynamicSubgraph, Graph, GraphView, NodeId, SubgraphScratch};
use rbq::rbq_pattern::{dual_simulation, dual_simulation_with, DualSimScratch, PatternBuilder};

/// A random digraph (≤ 24 nodes, ≤ 4 labels) where node 0 is the unique
/// "ME", plus a random chain pattern anchored at ME.
fn arb_graph_and_pattern() -> impl Strategy<Value = (Graph, rbq::rbq_pattern::Pattern)> {
    (3usize..24).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..4, n - 1);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        let extra = proptest::collection::vec((0u8..4, prop::bool::ANY), 1..5);
        (labels, edges, extra).prop_map(|(labels, edges, extra)| {
            let names: Vec<String> = std::iter::once("ME".to_string())
                .chain(labels.iter().map(|l| format!("L{l}")))
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let g = graph_from_edges(&refs, &edges);
            let mut pb = PatternBuilder::new();
            let me = pb.add_node("ME");
            let mut prev = me;
            for (l, fwd) in extra {
                let u = pb.add_node(&format!("L{l}"));
                if fwd {
                    pb.add_edge(prev, u);
                } else {
                    pb.add_edge(u, prev);
                }
                prev = u;
            }
            pb.personalized(me).output(prev);
            (g, pb.build())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A `SubgraphScratch` reused across randomized add sequences (with
    /// budget-rejected `try_add_node` probes interleaved) builds subgraphs
    /// identical to fresh `DynamicSubgraph::new` construction.
    #[test]
    fn subgraph_scratch_reuse_equals_fresh(
        (g, _) in arb_graph_and_pattern(),
        seqs in proptest::collection::vec(
            proptest::collection::vec((0u32..24, 0usize..8), 0..12),
            1..6,
        ),
    ) {
        let mut scratch = SubgraphScratch::new();
        for seq in &seqs {
            let mut warm = scratch.begin(&g);
            let mut fresh = DynamicSubgraph::new(&g);
            for &(raw, rem) in seq {
                let v = NodeId(raw % g.node_count() as u32);
                let a = warm.try_add_node(v, rem);
                let b = fresh.try_add_node(v, rem);
                prop_assert_eq!(a, b, "admission diverged at {:?}", v);
            }
            prop_assert_eq!(warm.members(), fresh.members());
            prop_assert_eq!(warm.num_edges(), fresh.num_edges());
            let wa: Vec<NodeId> = warm.node_ids().collect();
            let fa: Vec<NodeId> = fresh.node_ids().collect();
            prop_assert_eq!(wa, fa);
            for v in g.nodes() {
                prop_assert_eq!(warm.contains(v), fresh.contains(v));
                let wo: Vec<NodeId> = warm.out_neighbors(v).collect();
                let fo: Vec<NodeId> = fresh.out_neighbors(v).collect();
                prop_assert_eq!(wo, fo, "out lists differ at {:?}", v);
                let wi: Vec<NodeId> = warm.in_neighbors(v).collect();
                let fi: Vec<NodeId> = fresh.in_neighbors(v).collect();
                prop_assert_eq!(wi, fi, "in lists differ at {:?}", v);
            }
            scratch = warm.into_scratch();
        }
    }

    /// A `DualSimScratch` reused across a randomized sequence of universes
    /// computes the same maximum dual simulation as the fresh-scratch
    /// convenience wrapper.
    #[test]
    fn dualsim_scratch_reuse_equals_fresh(
        (g, p) in arb_graph_and_pattern(),
        keeps in proptest::collection::vec(
            proptest::collection::vec(prop::bool::ANY, 24),
            1..6,
        ),
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let mut scratch = DualSimScratch::new();
        // Full-graph first, then the universe sequence, all on one scratch.
        let warm_full = dual_simulation_with(&q, &g, None, &mut scratch).map(|r| r.to_dual_sim());
        let fresh_full = dual_simulation(&q, &g, None);
        match (&warm_full, &fresh_full) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                for u in p.nodes() {
                    prop_assert_eq!(a.matches_sorted(u), b.matches_sorted(u));
                }
            }
            _ => prop_assert!(false, "existence mismatch on full graph"),
        }
        for keep in &keeps {
            let mut uni: Vec<NodeId> = g
                .nodes()
                .filter(|v| keep.get(v.index()).copied().unwrap_or(false))
                .chain(std::iter::once(q.vp()))
                .collect();
            uni.sort_unstable();
            uni.dedup();
            let warm = dual_simulation_with(&q, &g, Some(&uni), &mut scratch)
                .map(|r| r.to_dual_sim());
            let fresh = dual_simulation(&q, &g, Some(&uni));
            match (warm, fresh) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    for u in p.nodes() {
                        prop_assert_eq!(a.matches_sorted(u), b.matches_sorted(u));
                    }
                }
                (a, b) => prop_assert!(
                    false,
                    "existence mismatch: warm={} fresh={}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
    }

    /// `Search` through a reused `ReductionScratch` produces the same
    /// `G_Q`, visit account, and termination data as fresh construction,
    /// across random query sequences, budgets, and pick policies.
    #[test]
    fn search_scratch_reuse_equals_fresh(
        (g, p) in arb_graph_and_pattern(),
        units in proptest::collection::vec(0usize..80, 1..5),
        policy_pick in 0u8..3,
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let policy = match policy_pick {
            0 => PickPolicy::Weighted,
            1 => PickPolicy::Fifo,
            _ => PickPolicy::Random,
        };
        let config = ReductionConfig { pick_policy: policy, ..Default::default() };
        let mut scratch = ReductionScratch::new();
        for &u in &units {
            let budget = ResourceBudget::from_units(&g, u);
            let fresh = search_reduced_graph_with(
                &g, &idx, &q, &budget, Semantics::Simulation, config,
            );
            let warm = search_reduced_graph_scratch(
                &g, &idx, &q, &budget, Semantics::Simulation, config, &mut scratch,
            );
            prop_assert_eq!(warm.gq.members(), fresh.gq.members());
            prop_assert_eq!(warm.gq.num_edges(), fresh.gq.num_edges());
            prop_assert_eq!(warm.visits, fresh.visits);
            prop_assert_eq!(warm.hit_budget, fresh.hit_budget);
            prop_assert_eq!(warm.final_b, fresh.final_b);
            prop_assert_eq!(warm.rounds, fresh.rounds);
            scratch.recycle(warm.gq);
        }
    }

    /// The full warm `rbsim` pipeline (reduction + evaluation through one
    /// `PatternScratch`) answers exactly like the one-shot entry point,
    /// across random query sequences.
    #[test]
    fn rbsim_scratch_reuse_equals_fresh(
        (g, p) in arb_graph_and_pattern(),
        units in proptest::collection::vec(0usize..80, 1..5),
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let mut scratch = PatternScratch::new();
        let mut warm = PatternAnswer::default();
        for &u in &units {
            let budget = ResourceBudget::from_units(&g, u);
            let fresh = rbsim(&g, &idx, &q, &budget);
            rbsim_with(&g, &idx, &q, &budget, &mut scratch, &mut warm);
            prop_assert_eq!(&warm.matches, &fresh.matches);
            prop_assert_eq!(warm.gq_size, fresh.gq_size);
            prop_assert_eq!(warm.gq_nodes, fresh.gq_nodes);
            prop_assert_eq!(warm.visits, fresh.visits);
            prop_assert_eq!(warm.hit_budget, fresh.hit_budget);
            prop_assert_eq!(warm.final_b, fresh.final_b);
            prop_assert_eq!(warm.rounds, fresh.rounds);
        }
    }
}
