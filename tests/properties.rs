//! Property-based tests (proptest) over randomly generated graphs and
//! patterns: the invariants the paper's theorems rest on must hold for
//! *every* input, not just the curated examples.

use proptest::prelude::*;
use rbq_core::{rbsim, rbsub, NeighborIndex, ResourceBudget};
use rbq_graph::builder::graph_from_edges;
use rbq_graph::traverse::reaches;
use rbq_graph::{Graph, GraphView, NodeId};
use rbq_pattern::{match_opt, vf2_opt, PatternBuilder, Vf2Config};
use rbq_reach::{compress_for_reachability, HierarchicalIndex};

/// Strategy: a random digraph with `n ≤ 24` nodes over ≤ 4 labels.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..4, n);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        (labels, edges).prop_map(move |(labels, edges)| {
            let names: Vec<String> = labels.iter().map(|l| format!("L{l}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            graph_from_edges(&refs, &edges)
        })
    })
}

/// Strategy: a graph with a unique personalized node (relabel node 0 "ME")
/// plus a small connected pattern anchored there.
fn arb_graph_and_pattern() -> impl Strategy<Value = (Graph, rbq_pattern::Pattern)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.node_count();
        // Rebuild with node 0 labeled ME.
        let mut b = rbq_graph::GraphBuilder::new();
        for v in g.nodes() {
            if v.index() == 0 {
                b.add_node("ME");
            } else {
                b.add_node(g.node_label_str(v));
            }
        }
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        let g2 = b.build();
        // Pattern: ME plus up to 3 query nodes chained off it with labels
        // drawn from the graph's alphabet.
        let extra = proptest::collection::vec((0u8..4, prop::bool::ANY), 1..4);
        (Just(g2), extra)
            .prop_map(move |(g2, extra)| {
                let mut pb = PatternBuilder::new();
                let me = pb.add_node("ME");
                let mut prev = me;
                for (l, fwd) in extra {
                    let u = pb.add_node(&format!("L{l}"));
                    if fwd {
                        pb.add_edge(prev, u);
                    } else {
                        pb.add_edge(u, prev);
                    }
                    prev = u;
                }
                pb.personalized(me).output(prev);
                (g2, pb.build())
            })
            .prop_filter("graph too small", move |_| n >= 2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Query-preserving compression is exact on every pair (§5 / [12]).
    #[test]
    fn compression_preserves_reachability(g in arb_graph()) {
        let c = compress_for_reachability(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                prop_assert_eq!(
                    c.query(s, t),
                    reaches(&g, s, t).0,
                    "mismatch on {}->{}", s, t
                );
            }
        }
    }

    /// RBReach soundness (Theorem 4(c)): true only if truly reachable —
    /// for every graph, every pair, several alphas.
    #[test]
    fn rbreach_never_false_positive(g in arb_graph(), alpha in 0.05f64..0.9) {
        let idx = HierarchicalIndex::build(&g, alpha);
        for s in g.nodes() {
            for t in g.nodes() {
                let ans = idx.query(s, t);
                if ans.reachable {
                    prop_assert!(reaches(&g, s, t).0, "false positive {}->{}", s, t);
                }
            }
        }
    }

    /// RBReach visit bound (Theorem 4(a)).
    #[test]
    fn rbreach_visit_bound(g in arb_graph(), alpha in 0.05f64..0.9) {
        let idx = HierarchicalIndex::build(&g, alpha);
        let cap = ((alpha * g.size() as f64) as usize).max(1);
        for s in g.nodes().take(6) {
            for t in g.nodes().take(6) {
                let ans = idx.query(s, t);
                prop_assert!(ans.visits <= cap + 2, "visits {} > cap {}", ans.visits, cap);
            }
        }
    }

    /// RBSim soundness: approximate matches are a subset of exact matches,
    /// under any budget (precision 1, §4.1 discussion).
    #[test]
    fn rbsim_matches_subset_of_exact(
        (g, p) in arb_graph_and_pattern(),
        units in 1usize..64,
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let budget = ResourceBudget::from_units(&g, units);
        let ans = rbsim(&g, &idx, &q, &budget);
        prop_assert!(ans.gq_size <= units, "budget violated: {} > {}", ans.gq_size, units);
        let exact = match_opt(&q, &g);
        for v in &ans.matches {
            prop_assert!(exact.contains(v), "spurious match {:?}", v);
        }
    }

    /// RBSim completeness at full budget: Q(G_Q) = Q(G) when α = 1.
    #[test]
    fn rbsim_exact_at_full_budget((g, p) in arb_graph_and_pattern()) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let ans = rbsim(&g, &idx, &q, &budget);
        let exact = match_opt(&q, &g);
        prop_assert_eq!(ans.matches, exact);
    }

    /// RBSub soundness under any budget.
    #[test]
    fn rbsub_matches_subset_of_exact(
        (g, p) in arb_graph_and_pattern(),
        units in 1usize..64,
    ) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let idx = NeighborIndex::build(&g);
        let budget = ResourceBudget::from_units(&g, units);
        let ans = rbsub(&g, &idx, &q, &budget);
        prop_assert!(ans.gq_size <= units);
        let exact = vf2_opt(&q, &g, Vf2Config::default());
        for v in &ans.matches {
            prop_assert!(exact.output_matches.contains(v), "spurious {:?}", v);
        }
    }

    /// Isomorphism answers are simulation answers (semantic containment).
    #[test]
    fn iso_subset_of_simulation((g, p) in arb_graph_and_pattern()) {
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let iso = vf2_opt(&q, &g, Vf2Config::default());
        let sim = match_opt(&q, &g);
        for v in &iso.output_matches {
            prop_assert!(sim.contains(v), "iso match {:?} not in simulation", v);
        }
    }

    /// The CSR builder and views agree on basic counts for any input.
    #[test]
    fn graph_view_consistency(g in arb_graph()) {
        let mut edge_total = 0usize;
        for v in g.nodes() {
            edge_total += g.out(v).len();
            // in/out views agree edge by edge
            for &w in g.out(v) {
                prop_assert!(g.inn(w).contains(&v));
            }
        }
        prop_assert_eq!(edge_total, g.edge_count());
        prop_assert_eq!(g.size(), g.node_count() + g.edge_count());
    }

    /// SCC condensation produces a DAG that preserves reachability.
    #[test]
    fn condensation_is_acyclic_and_preserving(g in arb_graph()) {
        let c = rbq_graph::condense::condense(&g);
        prop_assert!(rbq_graph::topo::is_acyclic(&c.dag));
        for s in g.nodes().take(8) {
            for t in g.nodes().take(8) {
                prop_assert_eq!(
                    reaches(&g, s, t).0,
                    reaches(&c.dag, c.map(s), c.map(t)).0
                );
            }
        }
    }

    /// Topological ranks strictly decrease along DAG edges.
    #[test]
    fn ranks_decrease_along_edges(g in arb_graph()) {
        let c = rbq_graph::condense::condense(&g);
        let ranks = rbq_graph::topo::topological_ranks(&c.dag);
        for (u, v) in c.dag.edges() {
            prop_assert!(ranks[u.index()] > ranks[v.index()]);
        }
    }

    /// DynamicSubgraph growth maintains induced-subgraph semantics in any
    /// insertion order.
    #[test]
    fn dynamic_subgraph_always_induced(
        g in arb_graph(),
        order in proptest::collection::vec(0usize..24, 1..12),
    ) {
        let mut d = rbq_graph::DynamicSubgraph::new(&g);
        let mut members: Vec<NodeId> = Vec::new();
        for i in order {
            if i < g.node_count() {
                let v = NodeId::new(i);
                d.add_node(v);
                if !members.contains(&v) {
                    members.push(v);
                }
            }
        }
        let ind = rbq_graph::InducedSubgraph::new(&g, members.iter().copied());
        prop_assert_eq!(d.num_edges(), ind.num_edges());
        prop_assert_eq!(d.num_nodes(), ind.num_nodes());
        for &v in &members {
            let mut a: Vec<NodeId> = d.out_neighbors(v).collect();
            let mut b: Vec<NodeId> = ind.out_neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bisimulation compression preserves dual-simulation answers for any
    /// graph and any anchored chain pattern.
    #[test]
    fn simcompress_preserves_dual_sim((g, p) in arb_graph_and_pattern()) {
        use rbq_pattern::{bisimulation_compress, dual_simulation};
        let Ok(q) = p.resolve(&g) else { return Ok(()); };
        let direct = dual_simulation(&q, &g, None)
            .map(|d| d.matches_sorted(q.uo()).to_vec())
            .unwrap_or_default();
        let c = bisimulation_compress(&g);
        let Ok(qc) = p.resolve(&c.quotient) else { return Ok(()); };
        let via = c.dual_sim_via_quotient(&qc).unwrap_or_default();
        prop_assert_eq!(direct, via);
    }

    /// Landmark distance estimates are upper bounds on true distances, and
    /// `Some` implies reachable.
    #[test]
    fn landmark_distance_upper_bound(g in arb_graph(), k in 1usize..6, seed in 0u64..50) {
        use rbq_reach::LandmarkDistances;
        use rbq_graph::distance::shortest_path;
        let ld = LandmarkDistances::build(&g, k, seed);
        for s in g.nodes().take(8) {
            for t in g.nodes().take(8) {
                if let Some(est) = ld.estimate(s, t) {
                    let exact = shortest_path(&g, s, t);
                    prop_assert!(exact.is_some(), "estimate implies reachable {}->{}", s, t);
                    let d = (exact.unwrap().len() - 1) as u32;
                    prop_assert!(est >= d, "estimate {} below exact {}", est, d);
                }
            }
        }
    }

    /// Shortest paths are genuine paths of minimal length (cross-checked
    /// against BFS distances).
    #[test]
    fn shortest_path_is_minimal(g in arb_graph()) {
        use rbq_graph::distance::{distances, shortest_path, INF};
        use rbq_graph::types::Direction;
        for s in g.nodes().take(6) {
            let dist = distances(&g, s, Direction::Out);
            for t in g.nodes().take(6) {
                match shortest_path(&g, s, t) {
                    Some(path) => {
                        prop_assert_eq!(path.len() as u32 - 1, dist[t.index()]);
                        prop_assert_eq!(*path.first().unwrap(), s);
                        prop_assert_eq!(*path.last().unwrap(), t);
                        for w in path.windows(2) {
                            prop_assert!(g.edge(w[0], w[1]), "gap in path");
                        }
                    }
                    None => prop_assert_eq!(dist[t.index()], INF),
                }
            }
        }
    }

    /// The reversed view answers reachability exactly backwards.
    #[test]
    fn reversed_view_flips_reachability(g in arb_graph()) {
        use rbq_graph::adapters::Reversed;
        let r = Reversed(&g);
        for s in g.nodes().take(6) {
            for t in g.nodes().take(6) {
                let fwd = reaches(&g, s, t).0;
                // Reachability on the reversed view via its own adjacency.
                let mut seen = std::collections::HashSet::new();
                let mut stack = vec![t];
                seen.insert(t);
                let mut bwd = false;
                while let Some(v) = stack.pop() {
                    if v == s { bwd = true; break; }
                    for w in r.out_neighbors(v) {
                        if seen.insert(w) {
                            stack.push(w);
                        }
                    }
                }
                prop_assert_eq!(fwd, bwd, "{}->{}", s, t);
            }
        }
    }

    /// LM vectors never report a false positive on any graph.
    #[test]
    fn lm_vectors_sound(g in arb_graph(), seed in 0u64..50) {
        use rbq_reach::LandmarkVectors;
        let lm = LandmarkVectors::build(&g, seed);
        for s in g.nodes().take(8) {
            for t in g.nodes().take(8) {
                if lm.query(s, t) {
                    prop_assert!(reaches(&g, s, t).0, "LM false positive {}->{}", s, t);
                }
            }
        }
    }

    /// RBSimAny is sound for anonymous chain patterns under any budget.
    #[test]
    fn rbsim_any_sound(
        (g, p) in arb_graph_and_pattern(),
        units in 1usize..64,
        seeds in 1usize..6,
    ) {
        use rbq_core::{rbsim_any, AnyConfig};
        use rbq_pattern::strongsim::strong_simulation_anonymous;
        let idx = NeighborIndex::build(&g);
        let budget = ResourceBudget::from_units(&g, units);
        let ans = rbsim_any(&g, &idx, &p, &budget, AnyConfig { max_seeds: seeds });
        let exact = strong_simulation_anonymous(&p, &g);
        for v in &ans.matches {
            prop_assert!(exact.contains(v), "spurious anonymous match {:?}", v);
        }
    }
}
