//! Differential proptests for live updates: an engine (or router) that
//! ingests a [`DeltaBatch`] in place must serve exactly what a fresh
//! engine (or router) built from scratch on the post-delta graph serves —
//! answers, visit counts, denial masks, and the schedule-independent
//! statistics, byte for byte, on a cold *and* a warm reduction cache.
//!
//! The warm-cache leg is the mutation-safety claim: the live engine's
//! cache is full of pre-delta entries when the batch lands, and the only
//! acceptable behaviours are "evicted" or "unreachable by generation" —
//! never "served stale".

use proptest::prelude::*;
use rbq_engine::{Engine, EngineConfig, Query, QueryResult};
use rbq_graph::{DeltaBatch, Graph, GraphBuilder, NodeId};
use rbq_pattern::PatternBuilder;
use rbq_router::{LabelHashPartitioner, Partitioner, Router, SccPartitioner};
use std::sync::Arc;

/// A random digraph with node 0 relabeled to the unique anchor `"ME"`,
/// the rest over `L0..L3`. Small, because the router differential builds
/// `2 × |k| × |partitioners|` full index sets per case.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..14).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..4, n - 1);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 2);
        (labels, edges).prop_map(move |(labels, edges)| {
            let mut b = GraphBuilder::new();
            b.add_node("ME");
            for l in &labels {
                b.add_node(&format!("L{l}"));
            }
            for &(u, v) in &edges {
                b.add_edge(NodeId(u), NodeId(v));
            }
            b.build()
        })
    })
}

/// Raw delta material: labels for up to two new nodes (`L4` is a label the
/// pre-delta graph never interned) and edge ops whose endpoints are taken
/// modulo the post-add node count, so every generated batch is valid.
type DeltaSpec = (Vec<u8>, Vec<(bool, u32, u32)>);

fn arb_delta() -> impl Strategy<Value = DeltaSpec> {
    (
        proptest::collection::vec(0u8..5, 0..3),
        proptest::collection::vec((prop::bool::ANY, 0u32..64, 0u32..64), 1..8),
    )
}

fn build_batch(n: usize, spec: &DeltaSpec) -> DeltaBatch {
    let (new_nodes, ops) = spec;
    let mut b = DeltaBatch::new();
    for &l in new_nodes {
        b.add_node(&format!("L{l}"));
    }
    let total = (n + new_nodes.len()) as u32;
    for &(add, x, y) in ops {
        let (u, v) = (NodeId(x % total), NodeId(y % total));
        if add {
            b.add_edge(u, v);
        } else {
            b.remove_edge(u, v);
        }
    }
    b
}

/// Raw query material: kind selector plus two operands. Reach endpoints
/// are taken modulo the pre-delta node count (valid before and after the
/// batch); patterns are one- or two-hop chains anchored at `ME` with
/// labels from `L0..L3`, alternating simulation and isomorphism.
type QuerySpec = (u8, u32, u32, bool);

fn arb_queries() -> impl Strategy<Value = Vec<QuerySpec>> {
    proptest::collection::vec((0u8..6, 0u32..64, 0u32..64, prop::bool::ANY), 1..7)
}

fn build_queries(n: usize, specs: &[QuerySpec]) -> Vec<Query> {
    specs
        .iter()
        .map(|&(kind, a, b, fwd)| match kind % 3 {
            0 => Query::Reach {
                source: NodeId(a % n as u32),
                target: NodeId(b % n as u32),
            },
            k => {
                let mut pb = PatternBuilder::new();
                let me = pb.add_node("ME");
                let u = pb.add_node(&format!("L{}", a % 4));
                if fwd {
                    pb.add_edge(me, u);
                } else {
                    pb.add_edge(u, me);
                }
                let mut out = u;
                if b % 2 == 0 {
                    let w = pb.add_node(&format!("L{}", b % 4));
                    pb.add_edge(u, w);
                    out = w;
                }
                pb.personalized(me).output(out);
                let pattern = pb.build();
                if k == 1 {
                    Query::PatternSim { pattern }
                } else {
                    Query::PatternIso { pattern }
                }
            }
        })
        .collect()
}

/// Rebuild the post-delta graph from scratch through the CSR builder — no
/// overlay rows, no inherited interner order beyond node order.
fn rebuild_from_scratch(g: &Graph) -> Graph {
    let mut b = GraphBuilder::new();
    for v in g.nodes() {
        b.add_node(g.node_label_str(v));
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.build()
}

/// Answers and visit counts must be byte-identical; `cached` is
/// explicitly schedule-dependent and excluded (see [`QueryResult`]).
fn assert_results_eq(
    live: &[QueryResult],
    fresh: &[QueryResult],
    leg: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(live.len(), fresh.len());
    for (i, (l, f)) in live.iter().zip(fresh).enumerate() {
        prop_assert_eq!(
            &l.answer,
            &f.answer,
            "{} answer diverged at query {}",
            leg,
            i
        );
        prop_assert_eq!(l.visits, f.visits, "{} visits diverged at query {}", leg, i);
    }
    Ok(())
}

/// The schedule-independent slice of [`rbq_engine::EngineStats`]
/// (latencies are wall-clock and excluded; cache hit/miss splits are
/// compared because both sides run the same batch sequence from cold).
fn stat_key(s: &rbq_engine::EngineStats) -> [usize; 11] {
    [
        s.queries,
        s.reach.queries,
        s.reach.visits,
        s.sim.queries,
        s.sim.visits,
        s.iso.queries,
        s.iso.visits,
        s.errors,
        s.denied,
        s.charged_visits,
        s.total_visits,
    ]
}

fn engine_config(aggregate: Option<usize>) -> EngineConfig {
    EngineConfig::builder()
        .threads(1)
        .aggregate_visit_budget(aggregate)
        .build()
        .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Engine::apply_deltas` ≡ fresh rebuild: after ingesting a batch,
    /// the live engine answers every query — cold cache and warm —
    /// exactly like a fresh engine on the from-scratch post-delta graph.
    #[test]
    fn engine_apply_deltas_matches_fresh_rebuild(
        g in arb_graph(),
        delta in arb_delta(),
        specs in arb_queries(),
        aggregate in 0usize..500,
    ) {
        let n = g.node_count();
        let batch = build_batch(n, &delta);
        let queries = build_queries(n, &specs);
        // Low draws mean "no aggregate budget" (the vendored proptest has
        // no Option strategy); the rest exercise settlement and denials.
        let cfg = engine_config((aggregate >= 50).then_some(aggregate));

        let live = Engine::new(Arc::new(g.clone()), cfg.clone());
        // Warm the pre-delta cache so stale entries exist when the batch
        // lands, then check the warm answers are at least self-consistent.
        let pre_cold = live.run_batch(&queries);
        let pre_warm = live.run_batch(&queries);
        assert_results_eq(&pre_cold.results, &pre_warm.results, "pre-delta warm")?;

        let (g2, report) = g.apply_delta(&batch).expect("valid batch");
        let live_report = live.apply_deltas(&batch).expect("valid batch");
        prop_assert_eq!(&live_report.touched_labels, &report.touched_labels);
        prop_assert_eq!(live.graph().node_count(), g2.node_count());
        prop_assert_eq!(live.graph().edge_count(), g2.edge_count());

        let fresh = Engine::new(Arc::new(rebuild_from_scratch(&g2)), cfg);
        let post_cold = live.run_batch(&queries);
        let fresh_cold = fresh.run_batch(&queries);
        assert_results_eq(&post_cold.results, &fresh_cold.results, "post-delta cold")?;
        prop_assert_eq!(stat_key(&post_cold.stats), stat_key(&fresh_cold.stats));

        let post_warm = live.run_batch(&queries);
        let fresh_warm = fresh.run_batch(&queries);
        assert_results_eq(&post_warm.results, &fresh_warm.results, "post-delta warm")?;
        prop_assert_eq!(stat_key(&post_warm.stats), stat_key(&fresh_warm.stats));
    }

    /// Two stacked batches: generations compose, and the live engine still
    /// matches a fresh rebuild of the twice-mutated graph.
    #[test]
    fn engine_stacked_deltas_match_fresh_rebuild(
        g in arb_graph(),
        d1 in arb_delta(),
        d2 in arb_delta(),
        specs in arb_queries(),
    ) {
        let n = g.node_count();
        let b1 = build_batch(n, &d1);
        let queries = build_queries(n, &specs);
        let cfg = engine_config(None);

        let live = Engine::new(Arc::new(g.clone()), cfg.clone());
        live.run_batch(&queries); // warm gen-0 cache
        live.apply_deltas(&b1).expect("valid batch");
        live.run_batch(&queries); // warm gen-1 cache

        let (g1, _) = g.apply_delta(&b1).expect("valid batch");
        let b2 = build_batch(g1.node_count(), &d2);
        live.apply_deltas(&b2).expect("valid batch");
        let (g2, _) = g1.apply_delta(&b2).expect("valid batch");
        prop_assert_eq!(live.generation(), 2);

        let fresh = Engine::new(Arc::new(rebuild_from_scratch(&g2)), cfg);
        for leg in ["stacked cold", "stacked warm"] {
            assert_results_eq(
                &live.run_batch(&queries).results,
                &fresh.run_batch(&queries).results,
                leg,
            )?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Router::apply_deltas` ≡ fresh router: for every shard count and
    /// both built-in partitioners, the live router after a batch routes
    /// and answers exactly like a `Router::new` on the rebuilt graph.
    #[test]
    fn router_apply_deltas_matches_fresh_router(
        g in arb_graph(),
        delta in arb_delta(),
        specs in arb_queries(),
        aggregate in 0usize..500,
    ) {
        let n = g.node_count();
        let batch = build_batch(n, &delta);
        let queries = build_queries(n, &specs);
        let cfg = engine_config((aggregate >= 50).then_some(aggregate));
        let (g2, _) = g.apply_delta(&batch).expect("valid batch");
        let rebuilt = Arc::new(rebuild_from_scratch(&g2));

        let partitioners: [&dyn Partitioner; 2] = [&LabelHashPartitioner, &SccPartitioner];
        for p in partitioners {
            for k in [1usize, 2, 4] {
                let mut live = Router::new(Arc::new(g.clone()), cfg.clone(), k, p)
                    .expect("router builds");
                live.run_batch(&queries); // warm pre-delta shard caches
                live.apply_deltas(&batch).expect("valid batch");

                let fresh = Router::new(rebuilt.clone(), cfg.clone(), k, p)
                    .expect("router builds");
                for q in &queries {
                    prop_assert_eq!(
                        live.route(q), fresh.route(q),
                        "ownership diverged ({}, k={})", p.name(), k
                    );
                }
                let leg = format!("router {} k={}", p.name(), k);
                let (lr, fr) = (live.run_batch(&queries), fresh.run_batch(&queries));
                assert_results_eq(&lr.results, &fr.results, &leg)?;
                prop_assert_eq!(stat_key(&lr.stats), stat_key(&fr.stats));
                let (lw, fw) = (live.run_batch(&queries), fresh.run_batch(&queries));
                assert_results_eq(&lw.results, &fw.results, &format!("{leg} warm"))?;
            }
        }
    }
}
