//! Cross-crate integration tests for resource-bounded pattern matching:
//! workload generation -> offline index -> dynamic reduction -> matching,
//! checked against the unbounded baselines and the paper's theorems.

use rbq_core::{pattern_accuracy, rbsim, rbsub, NeighborIndex, ResourceBudget};
use rbq_pattern::{match_opt, strong_simulation, vf2_all_output_matches, vf2_opt, Vf2Config};
use rbq_workload::{extract_pattern, me_node, social_groups, youtube_like, PatternSpec};

fn patterns_for(
    g: &rbq_graph::Graph,
    spec: PatternSpec,
    n: usize,
) -> Vec<rbq_pattern::ResolvedPattern> {
    (0..200u64)
        .filter_map(|seed| extract_pattern(g, spec, seed))
        .filter_map(|p| p.resolve(g).ok())
        .take(n)
        .collect()
}

#[test]
fn rbsim_budget_and_visit_bounds_hold() {
    let g = youtube_like(8_000, 11);
    let idx = NeighborIndex::build(&g);
    for q in patterns_for(&g, PatternSpec::new(4, 8), 5) {
        for units in [50usize, 200, 800] {
            let budget = ResourceBudget::from_units(&g, units);
            let ans = rbsim(&g, &idx, &q, &budget);
            assert!(
                ans.gq_size <= units,
                "|G_Q| = {} exceeds budget {units}",
                ans.gq_size
            );
            // Theorem 3(a) visiting bound, with slack for the candidate
            // scoring scans our accounting includes (see DESIGN.md).
            let ball = rbq_pattern::strongsim::ball_nodes(&g, q.vp(), q.dq());
            let dg = ball.iter().map(|&v| g.deg(v)).max().unwrap_or(1);
            assert!(
                ans.visits.total() <= dg * units * 8 + dg * 8,
                "visits {} vs d_G*units = {}",
                ans.visits.total(),
                dg * units
            );
        }
    }
}

#[test]
fn rbsim_is_sound_under_any_budget() {
    // Strong simulation on an induced subgraph can only under-report:
    // precision is always 1.
    let g = youtube_like(6_000, 3);
    let idx = NeighborIndex::build(&g);
    for q in patterns_for(&g, PatternSpec::new(4, 8), 4) {
        let exact = match_opt(&q, &g);
        for units in [10usize, 60, 400] {
            let budget = ResourceBudget::from_units(&g, units);
            let ans = rbsim(&g, &idx, &q, &budget);
            for v in &ans.matches {
                assert!(exact.contains(v), "spurious match {v:?} at {units} units");
            }
        }
    }
}

#[test]
fn rbsub_is_sound_under_any_budget() {
    let g = youtube_like(6_000, 5);
    let idx = NeighborIndex::build(&g);
    for q in patterns_for(&g, PatternSpec::new(4, 8), 4) {
        let exact = vf2_opt(&q, &g, Vf2Config::default());
        for units in [10usize, 60, 400] {
            let budget = ResourceBudget::from_units(&g, units);
            let ans = rbsub(&g, &idx, &q, &budget);
            for v in &ans.matches {
                assert!(
                    exact.output_matches.contains(v),
                    "spurious match {v:?} at {units} units"
                );
            }
        }
    }
}

#[test]
fn full_budget_recovers_exact_answers() {
    let g = youtube_like(4_000, 17);
    let idx = NeighborIndex::build(&g);
    for q in patterns_for(&g, PatternSpec::new(4, 8), 5) {
        let budget = ResourceBudget::from_ratio(&g, 1.0);
        let sim = rbsim(&g, &idx, &q, &budget);
        let exact_sim = match_opt(&q, &g);
        assert_eq!(sim.matches, exact_sim, "RBSim at alpha=1 must be exact");

        let sub = rbsub(&g, &idx, &q, &budget);
        let exact_sub = vf2_opt(&q, &g, Vf2Config::default());
        assert_eq!(
            sub.matches, exact_sub.output_matches,
            "RBSub at alpha=1 must be exact"
        );
    }
}

#[test]
fn accuracy_trends_to_exact_with_growing_alpha() {
    let g = youtube_like(8_000, 23);
    let idx = NeighborIndex::build(&g);
    let mut reached_exact = 0usize;
    let qs = patterns_for(&g, PatternSpec::new(4, 8), 5);
    let total = qs.len();
    for q in qs {
        let exact = match_opt(&q, &g);
        let mut best = 0.0f64;
        for units in [40usize, 150, 600, 2400] {
            let budget = ResourceBudget::from_units(&g, units);
            let ans = rbsim(&g, &idx, &q, &budget);
            best = best.max(pattern_accuracy(&exact, &ans.matches).f1);
        }
        if best == 1.0 {
            reached_exact += 1;
        }
    }
    assert!(
        reached_exact * 2 >= total,
        "only {reached_exact}/{total} queries reached exactness by 2400 units"
    );
}

#[test]
fn baselines_agree_with_each_other() {
    // match_opt (per-ball) and strong_simulation (prefilter) implement the
    // same semantics.
    let g = youtube_like(3_000, 31);
    for q in patterns_for(&g, PatternSpec::new(4, 6), 5) {
        assert_eq!(match_opt(&q, &g), strong_simulation(&q, &g));
    }
    // vf2_opt restricted to the ball agrees with unrestricted vf2.
    for q in patterns_for(&g, PatternSpec::new(4, 6), 3) {
        let a = vf2_all_output_matches(&q, &g, Vf2Config::default());
        let b = vf2_opt(&q, &g, Vf2Config::default());
        assert_eq!(a.output_matches, b.output_matches);
    }
}

#[test]
fn vf2_matches_are_simulation_matches() {
    // Isomorphic embeddings satisfy the simulation conditions, so
    // Q_iso(G) ⊆ Q_sim(G) for the same pattern.
    let g = youtube_like(3_000, 41);
    for q in patterns_for(&g, PatternSpec::new(4, 6), 5) {
        let iso = vf2_opt(&q, &g, Vf2Config::default());
        let sim = match_opt(&q, &g);
        for v in &iso.output_matches {
            assert!(
                sim.contains(v),
                "iso match {v:?} missing from simulation answer"
            );
        }
    }
}

#[test]
fn social_groups_end_to_end() {
    let g = social_groups(6, 30, 120, 13);
    let idx = NeighborIndex::build(&g);
    let me = me_node(&g).unwrap();
    if let Some(p) = extract_pattern(&g, PatternSpec::new(4, 8), 3) {
        let q = p.resolve(&g).unwrap();
        assert_eq!(q.vp(), me);
        let budget = ResourceBudget::from_ratio(&g, 0.2);
        let ans = rbsim(&g, &idx, &q, &budget);
        assert!(ans.gq_size <= budget.max_units);
        let exact = match_opt(&q, &g);
        for v in &ans.matches {
            assert!(exact.contains(v));
        }
    }
}

#[test]
fn gq_stays_within_dq_neighborhood() {
    // Theorem 3: G_Q is a subgraph of G_dQ(v_p).
    let g = youtube_like(5_000, 47);
    let idx = NeighborIndex::build(&g);
    for q in patterns_for(&g, PatternSpec::new(5, 10), 3) {
        let budget = ResourceBudget::from_units(&g, 500);
        let red = rbq_core::search_reduced_graph(
            &g,
            &idx,
            &q,
            &budget,
            rbq_core::guard::Semantics::Simulation,
        );
        let ball = rbq_pattern::strongsim::ball_nodes(&g, q.vp(), q.dq());
        for &v in red.gq.members() {
            assert!(ball.contains(&v), "{v:?} escaped G_dQ(v_p)");
        }
    }
}
